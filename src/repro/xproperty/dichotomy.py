"""The tractability frontier and dichotomy (Theorem 1.1, Theorem 4.1, Table I).

Theorem 4.1 establishes which axes have the X-property with respect to which
of the three node orders:

* w.r.t. ``<pre``:  ``Child+``, ``Child*`` (and ``<pre`` itself / ``SuccPre``),
* w.r.t. ``<post``: ``Following``,
* w.r.t. ``<bflr``: ``Child``, ``NextSibling``, ``NextSibling*``,
  ``NextSibling+``.

Theorem 1.1 (the dichotomy) then says: a set of axes ``F`` admits
polynomial-time conjunctive query evaluation iff there is a single total order
with respect to which *all* axes of ``F`` have the X-property; otherwise the
problem is NP-complete.  Since the three groups above are the subset-maximal
tractable sets, classification reduces to a subset test.

:func:`classify` implements the classification, :func:`order_for` returns a
witnessing order for tractable signatures, and :func:`table1` regenerates the
paper's Table I (complexities of all one- and two-axis signatures).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Optional

from ..trees.axes import AX, Axis
from ..trees.orders import Order
from ..trees.structure import Signature


class Complexity(str, Enum):
    """The two sides of the dichotomy."""

    PTIME = "in P"
    NP_COMPLETE = "NP-hard"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Theorem 4.1: axes that have the X-property w.r.t. each order (on all trees).
X_PROPERTY_AXES: dict[Order, frozenset[Axis]] = {
    Order.PRE: frozenset(
        {Axis.CHILD_PLUS, Axis.CHILD_STAR, Axis.DOCUMENT_ORDER, Axis.SUCC_PRE, Axis.SELF}
    ),
    Order.POST: frozenset({Axis.FOLLOWING, Axis.SELF}),
    Order.BFLR: frozenset(
        {
            Axis.CHILD,
            Axis.NEXT_SIBLING,
            Axis.NEXT_SIBLING_STAR,
            Axis.NEXT_SIBLING_PLUS,
            Axis.SELF,
        }
    ),
}

#: The three subset-maximal tractable axis sets within Ax (Section 1.1).
MAXIMAL_TRACTABLE_SETS: tuple[frozenset[Axis], ...] = (
    frozenset({Axis.CHILD, Axis.NEXT_SIBLING, Axis.NEXT_SIBLING_STAR, Axis.NEXT_SIBLING_PLUS}),
    frozenset({Axis.CHILD_PLUS, Axis.CHILD_STAR}),
    frozenset({Axis.FOLLOWING}),
)


def order_for(signature: Signature | Iterable[Axis]) -> Optional[Order]:
    """An order w.r.t. which every axis of the signature has the X-property.

    Returns ``None`` when no such order exists (the NP-hard side).  Axes
    outside the known groups (e.g. inverse axes) make the signature fall back
    to ``None`` -- the polynomial-time machinery then simply is not used.
    """
    axes = frozenset(signature.axes if isinstance(signature, Signature) else signature)
    for order in (Order.BFLR, Order.PRE, Order.POST):
        if axes <= X_PROPERTY_AXES[order]:
            return order
    return None


def is_tractable(signature: Signature | Iterable[Axis]) -> bool:
    """Does the signature admit PTIME combined-complexity evaluation?"""
    return order_for(signature) is not None


def classify(signature: Signature | Iterable[Axis]) -> Complexity:
    """Theorem 1.1: PTIME iff some order makes all axes X; NP-complete otherwise."""
    return Complexity.PTIME if is_tractable(signature) else Complexity.NP_COMPLETE


@dataclass(frozen=True)
class Table1Cell:
    """One cell of Table I."""

    row: Axis
    column: Axis
    complexity: Complexity
    theorem: str


#: The theorem references printed in Table I of the paper.
_THEOREM_OF: dict[frozenset[Axis], str] = {
    frozenset({Axis.CHILD}): "4.4",
    frozenset({Axis.CHILD, Axis.CHILD_PLUS}): "5.1",
    frozenset({Axis.CHILD, Axis.CHILD_STAR}): "5.1",
    frozenset({Axis.CHILD, Axis.NEXT_SIBLING}): "4.4",
    frozenset({Axis.CHILD, Axis.NEXT_SIBLING_PLUS}): "4.4",
    frozenset({Axis.CHILD, Axis.NEXT_SIBLING_STAR}): "4.4",
    frozenset({Axis.CHILD, Axis.FOLLOWING}): "5.2",
    frozenset({Axis.CHILD_PLUS}): "4.2",
    frozenset({Axis.CHILD_PLUS, Axis.CHILD_STAR}): "4.2",
    frozenset({Axis.CHILD_PLUS, Axis.NEXT_SIBLING}): "5.7",
    frozenset({Axis.CHILD_PLUS, Axis.NEXT_SIBLING_PLUS}): "5.7",
    frozenset({Axis.CHILD_PLUS, Axis.NEXT_SIBLING_STAR}): "5.7",
    frozenset({Axis.CHILD_PLUS, Axis.FOLLOWING}): "5.3",
    frozenset({Axis.CHILD_STAR}): "4.2",
    frozenset({Axis.CHILD_STAR, Axis.NEXT_SIBLING}): "5.5",
    frozenset({Axis.CHILD_STAR, Axis.NEXT_SIBLING_PLUS}): "5.4",
    frozenset({Axis.CHILD_STAR, Axis.NEXT_SIBLING_STAR}): "5.6",
    frozenset({Axis.CHILD_STAR, Axis.FOLLOWING}): "5.3",
    frozenset({Axis.NEXT_SIBLING}): "4.4",
    frozenset({Axis.NEXT_SIBLING, Axis.NEXT_SIBLING_PLUS}): "4.4",
    frozenset({Axis.NEXT_SIBLING, Axis.NEXT_SIBLING_STAR}): "4.4",
    frozenset({Axis.NEXT_SIBLING, Axis.FOLLOWING}): "5.8",
    frozenset({Axis.NEXT_SIBLING_PLUS}): "4.4",
    frozenset({Axis.NEXT_SIBLING_PLUS, Axis.NEXT_SIBLING_STAR}): "4.4",
    frozenset({Axis.NEXT_SIBLING_PLUS, Axis.FOLLOWING}): "5.8",
    frozenset({Axis.NEXT_SIBLING_STAR}): "4.4",
    frozenset({Axis.NEXT_SIBLING_STAR, Axis.FOLLOWING}): "5.8",
    frozenset({Axis.FOLLOWING}): "4.3",
}

#: The axis order used for rows and columns of Table I in the paper.
TABLE1_AXES: tuple[Axis, ...] = (
    Axis.CHILD,
    Axis.CHILD_PLUS,
    Axis.CHILD_STAR,
    Axis.NEXT_SIBLING,
    Axis.NEXT_SIBLING_PLUS,
    Axis.NEXT_SIBLING_STAR,
    Axis.FOLLOWING,
)

#: The complexities exactly as printed in the paper's Table I, used by the
#: tests to confirm our classifier regenerates the published table.
PAPER_TABLE1: dict[frozenset[Axis], Complexity] = {
    axes: (Complexity.PTIME if theorem.startswith("4") else Complexity.NP_COMPLETE)
    for axes, theorem in _THEOREM_OF.items()
}


def table1() -> list[Table1Cell]:
    """Regenerate Table I from the dichotomy classifier.

    The upper triangle (including the diagonal) of the 7x7 axis matrix is
    produced in the paper's row/column order.
    """
    cells: list[Table1Cell] = []
    for row_index, row in enumerate(TABLE1_AXES):
        for column in TABLE1_AXES[row_index:]:
            axes = frozenset({row, column})
            cells.append(
                Table1Cell(
                    row=row,
                    column=column,
                    complexity=classify(axes),
                    theorem=_THEOREM_OF.get(axes, "-"),
                )
            )
    return cells


def render_table1(cells: Optional[list[Table1Cell]] = None) -> str:
    """A textual rendering of Table I comparable to the paper's layout."""
    cells = table1() if cells is None else cells
    by_pair = {(cell.row, cell.column): cell for cell in cells}
    width = max(len(axis.value) for axis in TABLE1_AXES) + 2
    header = " " * width + "".join(axis.value.ljust(width) for axis in TABLE1_AXES)
    lines = [header]
    for row_index, row in enumerate(TABLE1_AXES):
        entries: list[str] = []
        for column_index, column in enumerate(TABLE1_AXES):
            if column_index < row_index:
                entries.append("".ljust(width))
                continue
            cell = by_pair[(row, column)]
            text = f"{cell.complexity.value} ({cell.theorem})"
            entries.append(text.ljust(width))
        lines.append(row.value.ljust(width) + "".join(entries))
    return "\n".join(lines)


def maximal_tractable_sets() -> tuple[frozenset[Axis], ...]:
    """The subset-maximal tractable sets of axes (Section 1.1)."""
    return MAXIMAL_TRACTABLE_SETS


def verify_maximality() -> bool:
    """Check the maximality claim: adding any other Ax axis breaks tractability."""
    for tractable_set in MAXIMAL_TRACTABLE_SETS:
        if not is_tractable(tractable_set):
            return False
        for axis in AX - tractable_set:
            if is_tractable(tractable_set | {axis}):
                return False
    return True
