"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.trees import Tree, from_nested, random_tree
from repro.trees.structure import TreeStructure


@pytest.fixture
def sentence_tree() -> Tree:
    """The small parse tree used in many evaluation tests.

    Pre-order node ids::

        0 S
        1   NP
        2     DT
        3     NN
        4   VP
        5     VB
        6     NP
        7       NN
        8   PP
    """
    return from_nested(
        (
            "S",
            [
                ("NP", [("DT", []), ("NN", [])]),
                ("VP", [("VB", []), ("NP", [("NN", [])])]),
                ("PP", []),
            ],
        )
    )


@pytest.fixture
def sentence_structure(sentence_tree: Tree) -> TreeStructure:
    return TreeStructure(sentence_tree)


@pytest.fixture
def wide_tree() -> Tree:
    """A root with five leaf children labelled A..E (sibling-axis tests)."""
    return from_nested(("R", [("A", []), ("B", []), ("C", []), ("D", []), ("E", [])]))


@pytest.fixture
def medium_random_tree() -> Tree:
    return random_tree(40, alphabet=("A", "B", "C"), seed=7, unlabeled_probability=0.15)
