"""Tests for plan-vs-actual accounting: drift math, merging, serving integration.

The ledger's contract: the first request an engine serves seeds its
calibration at drift 1.0; after that, drift is the engine's typical
units-per-second rate (geometric mean) over this request's rate, so slower-
than-estimated requests drift above 1 ("under-estimate") and faster ones
below.  Snapshots merge across processes by summing calibrations and
re-ranking the union of top tables, which is what the sharded backend ships
over its control channel.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.observability.accounting import ACCOUNTING, PlanAccounting
from repro.observability.metrics import SLOW_LOG
from repro.service import BatchExecutor, Request, ShardedExecutor
from repro.trees import to_xml
from repro.workloads import auction_document

BASE = dict(
    query_key="k0",
    query_text="Q(x) <- A(x)",
    doc="doc",
    rows=5,
    stage_ms={"plan": 0.2, "execute": 0.8},
    propagator="ac4",
    lowering="none",
    routing="cost_model",
    stats_bucket="resident",
    estimated_rows=5.0,
)


def record(ledger: PlanAccounting, engine: str, cost: float, elapsed_ms: float, **overrides):
    fields = {**BASE, "engine": engine, "estimated_cost": cost, "elapsed_ms": elapsed_ms}
    fields.update(overrides)
    return ledger.record(**fields)


class TestDriftMath:
    def test_first_request_seeds_calibration_at_drift_one(self):
        ledger = PlanAccounting()
        assert record(ledger, "xproperty", 100.0, 100.0) == pytest.approx(1.0)
        stats = ledger.stats()
        assert stats["requests"] == 1
        # 100 units in 0.1s -> 1000 units/second.
        assert stats["engines"]["xproperty"]["units_per_second"] == pytest.approx(1000.0)

    def test_slower_than_calibrated_drifts_above_one(self):
        ledger = PlanAccounting()
        record(ledger, "xproperty", 100.0, 100.0)  # calibrate: 1000 units/s
        # Same estimate, twice the time -> rate 500 u/s -> drift 1000/500 = 2.
        drift = record(ledger, "xproperty", 100.0, 200.0)
        assert drift == pytest.approx(2.0)
        entry = ledger.stats()["top_drift"][0]
        assert entry["drift"] == pytest.approx(2.0)
        assert entry["direction"] == "under-estimate"

    def test_faster_than_calibrated_drifts_below_one(self):
        ledger = PlanAccounting()
        record(ledger, "xproperty", 100.0, 100.0)
        record(ledger, "xproperty", 100.0, 200.0)
        # Calibration is now the geometric mean of 1000 and 500 u/s.
        drift = record(ledger, "xproperty", 100.0, 50.0)
        assert drift == pytest.approx(math.sqrt(1000 * 500) / 2000)
        assert drift < 1.0

    def test_engines_calibrate_independently(self):
        ledger = PlanAccounting()
        record(ledger, "fast", 1000.0, 1.0)
        record(ledger, "slow", 10.0, 1.0)
        # Each engine's second request at its own typical rate: no drift.
        assert record(ledger, "fast", 1000.0, 1.0) == pytest.approx(1.0)
        assert record(ledger, "slow", 10.0, 1.0) == pytest.approx(1.0)

    def test_non_positive_cost_or_elapsed_is_skipped(self):
        ledger = PlanAccounting()
        assert record(ledger, "xproperty", 0.0, 100.0) is None
        assert record(ledger, "xproperty", 100.0, 0.0) is None
        stats = ledger.stats()
        assert stats["requests"] == 0
        assert stats["skipped"] == 2
        assert stats["top_drift"] == []


class TestBoundingAndMerge:
    def test_top_table_keeps_the_worst_by_severity(self):
        ledger = PlanAccounting(capacity=3)
        record(ledger, "e", 100.0, 100.0)  # drift 1.0
        # Drifts 2^1..2^5 in both directions, worst last.
        for exponent in range(1, 6):
            record(ledger, "e", 100.0, 100.0 * 2**exponent, query_key=f"slow{exponent}")
        top = ledger.stats()["top_drift"]
        assert len(top) == 3
        severities = [abs(math.log2(entry["drift"])) for entry in top]
        assert severities == sorted(severities, reverse=True)
        assert ledger.stats()["requests"] == 6  # bounding the table loses no counts

    def test_merge_sums_calibrations_and_reranks_tops(self):
        left, right = PlanAccounting(capacity=4), PlanAccounting(capacity=4)
        record(left, "e", 100.0, 100.0)
        record(left, "e", 100.0, 400.0)  # drift 4.0
        record(right, "e", 100.0, 100.0)
        record(right, "e", 100.0, 12.5)  # 8x faster than calibrated: drift 0.125

        merged = PlanAccounting(capacity=2)
        merged.merge_snapshot(left.snapshot())
        merged.merge_snapshot(right.snapshot())
        stats = merged.stats()
        assert stats["requests"] == 4
        assert stats["engines"]["e"]["count"] == 4
        # Geometric mean of the four observed rates survives the merge.
        rates = [1000.0, 250.0, 1000.0, 8000.0]
        expected = math.exp(sum(math.log(rate) for rate in rates) / len(rates))
        assert stats["engines"]["e"]["units_per_second"] == pytest.approx(expected, rel=1e-3)
        # The union re-ranks by |log2(drift)|: 0.125 (severity 3) outranks 4.0.
        assert [entry["drift"] for entry in stats["top_drift"]] == [0.125, 4.0]

    def test_snapshot_round_trips_through_json(self):
        ledger = PlanAccounting()
        record(ledger, "e", 100.0, 250.0)
        snapshot = json.loads(json.dumps(ledger.snapshot()))
        merged = PlanAccounting()
        merged.merge_snapshot(snapshot)
        assert merged.stats()["requests"] == 1


@pytest.fixture
def auction_xml():
    return to_xml(auction_document(num_items=10, seed=3))


REQUESTS = [
    Request(doc="auction", query="Q(i) <- item(i), Child(i, p), payment(p)"),
    Request(doc="auction", xpath="//description//listitem"),
]


class TestServingIntegration:
    def test_batch_executor_stats_carry_the_ledger(self, auction_xml):
        ACCOUNTING.clear()
        executor = BatchExecutor()
        try:
            executor.store.register_xml("auction", auction_xml)
            results = executor.execute_batch(REQUESTS)
            assert all(result.ok for result in results)
            accounting = executor.stats()["plan_accounting"]
        finally:
            executor.close()
        assert accounting["requests"] == len(REQUESTS)
        assert accounting["top_drift"]
        entry = accounting["top_drift"][0]
        assert {"drift", "direction", "engine", "lowering", "estimated_cost", "stage_ms"} <= set(
            entry
        )

    def test_sharded_executor_merges_worker_ledgers(self, auction_xml):
        executor = ShardedExecutor(shards=2)
        try:
            executor.register_payload({"doc": "auction", "xml": auction_xml})
            results = executor.execute_batch(REQUESTS * 2)
            assert all(result.ok for result in results)
            accounting = executor.stats()["plan_accounting"]
        finally:
            executor.close()
        # Workers clear inherited state post-fork, so the merged ledger counts
        # exactly what this executor served.
        assert accounting["requests"] == 2 * len(REQUESTS)
        assert accounting["engines"]
        assert accounting["top_drift"]

    def test_results_carry_attribution_but_not_on_the_wire(self, auction_xml):
        executor = BatchExecutor()
        try:
            executor.store.register_xml("auction", auction_xml)
            result = executor.execute(REQUESTS[0])
        finally:
            executor.close()
        assert result.ok
        assert result.plan_attribution is not None
        assert {"lowering", "routing", "estimated_cost", "drift"} <= set(result.plan_attribution)
        # The wire body must stay byte-identical to the pre-accounting era.
        assert sorted(result.to_json_dict()) == [
            "answers",
            "cache_hit",
            "count",
            "doc",
            "elapsed_ms",
            "engine",
            "propagator",
            "query_key",
            "truncated",
        ]

    def test_slow_log_entries_carry_plan_attribution(self, auction_xml):
        executor = BatchExecutor()
        threshold = SLOW_LOG.threshold_ms
        SLOW_LOG.threshold_ms = 0.0  # record everything for the duration
        try:
            executor.store.register_xml("auction", auction_xml)
            assert executor.execute(REQUESTS[0]).ok
            entry = SLOW_LOG.entries()[-1]
        finally:
            SLOW_LOG.threshold_ms = threshold
            executor.close()
        assert {"lowering", "routing", "estimated_cost", "drift"} <= set(entry)
        assert entry["engine"] is not None
