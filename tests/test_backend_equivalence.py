"""Cross-backend byte-identity: in-memory vs columnar vs SQLite accel.

Every query must produce byte-identical answers through

* the in-memory planner with the per-candidate (``columnar=False``) paths,
* the in-memory planner with the columnar kernels (the default),
* the SQLite accel-table backend (``Engine.SQL``),

across boolean/monadic/k-ary heads (including repeated head variables),
labels, pinning, cyclic shapes, and extra unary relations.  The CI
``backend-equivalence`` job runs exactly this suite on every push.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backends.sqlite import SQLiteBackend, evaluate_structure
from repro.decomposition.yannakakis import evaluate_answers
from repro.evaluation import Engine, evaluate, is_satisfied
from repro.queries import parse_query
from repro.queries.atoms import AxisAtom, LabelAtom
from repro.queries.query import ConjunctiveQuery, QueryBuilder
from repro.trees import Axis, Tree, TreeStructure, parse_sexpr, random_tree

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

ALPHABET = ("A", "B", "C")

AXES = (
    Axis.CHILD,
    Axis.CHILD_PLUS,
    Axis.CHILD_STAR,
    Axis.NEXT_SIBLING,
    Axis.NEXT_SIBLING_PLUS,
    Axis.NEXT_SIBLING_STAR,
    Axis.FOLLOWING,
)


@st.composite
def trees(draw, min_size: int = 1, max_size: int = 14) -> Tree:
    size = draw(st.integers(min_value=min_size, max_value=max_size))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return random_tree(
        size,
        alphabet=ALPHABET,
        max_children=3,
        multi_label_probability=draw(st.sampled_from([0.0, 0.3])),
        unlabeled_probability=draw(st.sampled_from([0.0, 0.2])),
        seed=seed,
    )


@st.composite
def head_queries(draw, axes=AXES, max_variables: int = 4, max_arity: int = 2):
    num_variables = draw(st.integers(min_value=2, max_value=max_variables))
    variables = [f"v{i}" for i in range(num_variables)]
    num_atoms = draw(st.integers(min_value=1, max_value=num_variables + 2))
    rng = random.Random(draw(st.integers(min_value=0, max_value=10_000)))
    atoms: list = []
    for _ in range(num_atoms):
        source, target = rng.sample(variables, 2)
        atoms.append(AxisAtom(rng.choice(list(axes)), source, target))
    for variable in variables:
        if rng.random() < 0.5:
            atoms.append(LabelAtom(rng.choice(ALPHABET), variable))
    body_variables = sorted({v for atom in atoms for v in atom.variables()})
    arity = draw(st.integers(min_value=0, max_value=max_arity))
    head = tuple(rng.choice(body_variables) for _ in range(arity))
    return ConjunctiveQuery(head, tuple(atoms), "H")


def _answer_bytes(query, structure, engine, **kwargs) -> str:
    return repr(sorted(evaluate(query, structure, engine=engine, **kwargs)))


class TestCrossBackendIdentity:
    @SETTINGS
    @given(trees(), head_queries())
    def test_three_backends_agree(self, tree, query):
        structure = TreeStructure(tree)
        columnar = repr(sorted(evaluate(query, structure)))
        sql = _answer_bytes(query, structure, Engine.SQL)
        per_candidate = repr(sorted(evaluate_answers(query, structure, columnar=False)))
        assert columnar == sql == per_candidate

    @SETTINGS
    @given(trees(), head_queries(max_arity=0), st.integers(min_value=0, max_value=10_000))
    def test_boolean_with_pinning_agrees(self, tree, query, seed):
        structure = TreeStructure(tree)
        rng = random.Random(seed)
        variable = rng.choice(query.variables())
        pinned = {variable: rng.randrange(len(tree))}
        expected = is_satisfied(query, structure, Engine.BACKTRACKING, pinned)
        assert is_satisfied(query, structure, Engine.SQL, pinned) == expected

    @SETTINGS
    @given(trees(), head_queries((Axis.CHILD_PLUS, Axis.CHILD_STAR, Axis.FOLLOWING)))
    def test_cyclic_shapes_agree(self, tree, query):
        # The random atom soup over transitive axes is frequently cyclic; the
        # SQL join handles cycles natively and must match the decomposition
        # engine's answers exactly.
        structure = TreeStructure(tree)
        assert _answer_bytes(query, structure, Engine.SQL) == repr(
            sorted(evaluate_answers(query, structure))
        )

    @SETTINGS
    @given(trees(), st.integers(min_value=0, max_value=10_000))
    def test_extra_unary_relations_agree(self, tree, seed):
        rng = random.Random(seed)
        members = frozenset(rng.sample(range(len(tree)), rng.randint(0, len(tree))))
        structure = TreeStructure(tree)
        structure.add_unary("X", members)
        query = (
            QueryBuilder("Q")
            .label("X", "x")
            .descendant_or_self("x", "y")
            .select("x", "y")
            .build()
        )
        assert _answer_bytes(query, structure, Engine.SQL) == _answer_bytes(
            query, structure, Engine.BACKTRACKING
        )


class TestSQLiteBackendDirect:
    def tree(self) -> Tree:
        return parse_sexpr("(A (B (C) (A)) (B) (C (B (A))))")

    def test_boolean_and_kary_results(self):
        tree = self.tree()
        backend = SQLiteBackend()
        backend.register_tree("doc", tree)
        query = parse_query("Q(x, y) <- A(x), Child+(x, y), B(y)")
        expected = evaluate(query, TreeStructure(tree))
        assert backend.evaluate("doc", query) == expected
        assert backend.is_satisfied("doc", query)
        assert backend.evaluate("doc", query.as_boolean()) == frozenset({()})
        unsat = parse_query("Q <- C(x), Child(x, y), A(y), B(y)")
        assert backend.evaluate("doc", unsat) == frozenset()
        assert not backend.is_satisfied("doc", unsat)

    def test_empty_query_is_trivially_true(self):
        backend = SQLiteBackend()
        backend.register_tree("doc", self.tree())
        assert backend.evaluate("doc", ConjunctiveQuery((), ())) == frozenset({()})

    def test_unknown_label_yields_no_answers(self):
        backend = SQLiteBackend()
        backend.register_tree("doc", self.tree())
        assert backend.evaluate("doc", parse_query("Q(x) <- Z(x)")) == frozenset()

    def test_file_backed_round_trip(self, tmp_path):
        tree = self.tree()
        path = str(tmp_path / "accel.db")
        query = parse_query("Q(x) <- B(x), Following(x, y), A(y)")
        expected = evaluate(query, TreeStructure(tree))
        with SQLiteBackend(path) as backend:
            assert backend.ensure_document("doc", tree) is True
            assert backend.evaluate("doc", query) == expected
        # A fresh process re-opens the database and reuses the accel rows.
        with SQLiteBackend(path) as backend:
            assert backend.ensure_document("doc", tree) is False
            assert backend.has_document("doc")
            assert backend.document_ids() == ["doc"]
            assert backend.evaluate("doc", query) == expected

    def test_large_extra_unary_goes_through_temp_table(self):
        tree = random_tree(1200, alphabet=("A",), seed=3)
        structure = TreeStructure(tree)
        members = frozenset(range(0, len(tree), 2))
        structure.add_unary("X", members)
        query = QueryBuilder("Q").label("X", "x").select("x").build()
        answers = evaluate_structure(query, structure)
        assert answers == frozenset((node,) for node in members)

    def test_missing_document_raises_nothing_but_returns_empty(self):
        backend = SQLiteBackend()
        assert backend.evaluate("ghost", parse_query("Q(x) <- A(x)")) == frozenset()


class TestStoreMirror:
    def test_document_store_mirrors_into_accel_backend(self, tmp_path):
        from repro.service import DocumentStore

        path = str(tmp_path / "mirror.db")
        backend = SQLiteBackend(path)
        store = DocumentStore(accel_backend=backend)
        store.register_sexpr("doc", "(A (B) (C (B)))")
        assert backend.has_document("doc")
        query = parse_query("Q(x) <- B(x)")
        assert backend.evaluate("doc", query) == evaluate(
            query, store.get("doc").structure
        )
        # Eviction from the in-memory store keeps the accel rows.
        store.evict("doc")
        assert backend.has_document("doc")


@pytest.mark.parametrize("engine", [Engine.SQL])
def test_planner_sql_engine_never_auto_chosen(engine):
    from repro.evaluation.planner import choose_engine

    query = parse_query("Q(x) <- A(x), Child(x, y), B(y)")
    assert choose_engine(query) is not engine
