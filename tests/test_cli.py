"""Tests for the command-line interface."""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import time

import pytest

import repro
from repro.cli import build_parser, main


@pytest.fixture
def xml_file(tmp_path):
    path = tmp_path / "doc.xml"
    path.write_text(
        "<site><regions><europe>"
        "<item><payment/></item><item/>"
        "</europe></regions></site>",
        encoding="utf-8",
    )
    return str(path)


class TestEvaluateCommand:
    def test_evaluate_xml_with_datalog_query(self, xml_file, capsys):
        exit_code = main(
            [
                "evaluate",
                "--tree",
                xml_file,
                "--query",
                "Q(i) <- item(i), Child(i, p), payment(p)",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "answers  : 1" in output
        assert "item" in output

    def test_evaluate_sexpr_with_xpath(self, capsys):
        exit_code = main(
            ["evaluate", "--sexpr", "(S (NP (NN)) (VP))", "--xpath", "//NP[NN]"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "answers  : 1" in output

    def test_evaluate_boolean_query(self, capsys):
        exit_code = main(
            ["evaluate", "--sexpr", "(A (B))", "--query", "Q <- A(x), Child(x, y), B(y)"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "answer   : true" in output

    def test_missing_tree_or_query_errors(self):
        with pytest.raises(SystemExit):
            main(["evaluate", "--query", "Q <- A(x)"])
        with pytest.raises(SystemExit):
            main(["evaluate", "--sexpr", "(A)"])

    def test_answer_limit(self, capsys):
        exit_code = main(
            ["evaluate", "--sexpr", "(A (A) (A) (A))", "--query", "Q(x) <- A(x)", "--limit", "2"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "... 2 more" in output

    def test_engine_auto_picks_decomposition_for_cyclic_bounded_width(self, capsys):
        exit_code = main(
            [
                "evaluate",
                "--sexpr",
                "(A (B (C)) (B (C) (C)))",
                "--query",
                "Q(x) <- A(x), Child+(x, y), Child+(x, z), Following(y, z)",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "engine   : decomposition (propagator: ac4, routing: cost)" in output
        assert "answers  : 1" in output

    def test_engine_override_forces_backtracking(self, capsys):
        exit_code = main(
            [
                "evaluate",
                "--sexpr",
                "(A (B (C)) (B (C) (C)))",
                "--query",
                "Q(x) <- A(x), Child+(x, y), Child+(x, z), Following(y, z)",
                "--engine",
                "backtracking",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "engine   : backtracking (forced) (propagator: ac4, routing: cost)" in output
        assert "answers  : 1" in output

    def test_engine_overrides_agree_in_process(self, capsys):
        answer_lines = set()
        for engine in ("auto", "decomposition", "backtracking"):
            exit_code = main(
                [
                    "evaluate",
                    "--sexpr",
                    "(A (B (C)) (B (C) (C)))",
                    "--query",
                    "Q(y) <- B(y), Child+(x, y), Child+(x, z), Following(y, z)",
                    "--engine",
                    engine,
                ]
            )
            assert exit_code == 0
            output = capsys.readouterr().out
            answer_lines.add(output[output.index("answers") :])
        assert len(answer_lines) == 1

    def test_engine_rejects_unknown_value(self, capsys):
        # argparse validates the choice list, matching the --propagator style.
        with pytest.raises(SystemExit):
            main(
                [
                    "evaluate",
                    "--sexpr",
                    "(A)",
                    "--query",
                    "Q <- A(x)",
                    "--engine",
                    "quantum",
                ]
            )
        assert "invalid choice" in capsys.readouterr().err

    def test_engine_inapplicable_combination_reports_cleanly(self, capsys):
        # Forcing the acyclic evaluator on a cyclic query is a client error,
        # not a traceback.
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "evaluate",
                    "--sexpr",
                    "(A (B) (B))",
                    "--query",
                    "Q(x) <- A(x), Child+(x, y), Child+(x, z), Following(y, z)",
                    "--engine",
                    "acyclic",
                ]
            )
        assert "--engine acyclic" in str(excinfo.value)


class TestClassifyCommand:
    def test_tractable_signature(self, capsys):
        assert main(["classify", "Child+, Child*"]) == 0
        output = capsys.readouterr().out
        assert "in P" in output
        assert "<pre" in output

    def test_np_hard_signature(self, capsys):
        assert main(["classify", "Child, Following"]) == 0
        output = capsys.readouterr().out
        assert "NP-hard" in output

    def test_unknown_axis(self):
        with pytest.raises(ValueError):
            main(["classify", "Sideways"])


class TestRewriteCommand:
    def test_rewrite_with_trace(self, capsys):
        assert (
            main(
                [
                    "rewrite",
                    "Q <- A(x), Child+(x, y), B(y), Child+(x, z), Child+(y, z)",
                    "--trace",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "acyclic disjunct" in output
        assert "apply-lifter" in output

    def test_rewrite_unsatisfiable(self, capsys):
        assert main(["rewrite", "Q <- Child+(x, y), Child+(y, x)"]) == 0
        output = capsys.readouterr().out
        assert "unsatisfiable" in output

    def test_rewrite_from_xpath(self, capsys):
        assert main(["rewrite", "--xpath", "//A[B]"]) == 0
        output = capsys.readouterr().out
        assert "output: 1 acyclic disjunct" in output


class TestEndToEndSmoke:
    """The ``python -m repro`` module entry and the ``cq-trees`` console script.

    These run the CLI in a real subprocess, covering ``__main__.py`` and the
    entry-point wiring that in-process ``main(...)`` calls never touch.
    """

    @staticmethod
    def _subprocess_env():
        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return env

    def test_python_dash_m_repro_evaluate(self):
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "evaluate",
                "--sexpr",
                "(S (NP (NN)) (VP))",
                "--xpath",
                "//NP[NN]",
            ],
            capture_output=True,
            text=True,
            env=self._subprocess_env(),
            timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        assert "answers  : 1" in completed.stdout

    def test_python_dash_m_repro_classify_and_propagator_flag(self):
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "evaluate",
                "--sexpr",
                "(A (B))",
                "--query",
                "Q <- A(x), Child(x, y), B(y)",
                "--propagator",
                "ac3",
            ],
            capture_output=True,
            text=True,
            env=self._subprocess_env(),
            timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        assert "answer   : true" in completed.stdout
        assert "propagator: ac3" in completed.stdout

    def test_python_dash_m_repro_bad_usage_fails(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro"],
            capture_output=True,
            text=True,
            env=self._subprocess_env(),
            timeout=120,
        )
        assert completed.returncode != 0

    def test_serve_sigterm_leaves_no_orphan_shard_workers(self):
        """Regression: SIGTERM (docker stop, ``process.terminate()``) used to
        kill ``serve --async --shards N`` without running ``executor.close()``,
        orphaning the shard worker processes forever."""
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--port", "0", "--async", "--shards", "2"],
            stdout=subprocess.PIPE,
            text=True,
            env=self._subprocess_env(),
        )
        children: list[int] = []
        try:
            banner = process.stdout.readline()
            assert "serving on http://" in banner
            children_path = f"/proc/{process.pid}/task/{process.pid}/children"
            if not os.path.exists(children_path):
                pytest.skip("/proc children interface unavailable on this platform")
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                with open(children_path) as handle:
                    children = [int(pid) for pid in handle.read().split()]
                if len(children) >= 2:
                    break
                time.sleep(0.1)
            assert len(children) >= 2, "shard workers did not come up"
        finally:
            process.terminate()
            process.wait(timeout=15)
            process.stdout.close()

        def running(pid: int) -> bool:
            # Zombies count as gone: they are dead, just not yet reaped by
            # whatever pid 1 is in this container.
            try:
                with open(f"/proc/{pid}/stat") as handle:
                    state = handle.read().rsplit(")", 1)[1].split()[0]
            except (OSError, IndexError):
                return False
            return state not in ("Z", "X")

        deadline = time.monotonic() + 15
        alive = children
        while time.monotonic() < deadline:
            alive = [pid for pid in alive if running(pid)]
            if not alive:
                break
            time.sleep(0.2)
        assert not alive, f"orphaned shard worker processes: {alive}"

    def test_console_script_entry_point_target(self):
        """The ``cq-trees = repro.cli:main`` target resolves and runs."""
        import importlib

        module_name, _, attribute = "repro.cli:main".partition(":")
        entry = getattr(importlib.import_module(module_name), attribute)
        assert entry(["classify", "Child+, Child*"]) == 0

    @pytest.mark.skipif(
        shutil.which("cq-trees") is None,
        reason="cq-trees console script not installed (pip install -e . in CI)",
    )
    def test_console_script_executable(self):
        completed = subprocess.run(
            ["cq-trees", "table1"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        assert "NP-hard" in completed.stdout

    def test_evaluate_propagators_agree_in_process(self, xml_file, capsys):
        outputs = []
        for propagator in ("ac4", "ac3", "horn"):
            exit_code = main(
                [
                    "evaluate",
                    "--tree",
                    xml_file,
                    "--query",
                    "Q(i) <- item(i), Child(i, p), payment(p)",
                    "--propagator",
                    propagator,
                ]
            )
            assert exit_code == 0
            out = capsys.readouterr().out
            outputs.append(out[out.index("answers") :])
        assert outputs[0] == outputs[1] == outputs[2]


class TestBatchCommand:
    def test_jsonl_round_trip(self, tmp_path, xml_file):
        import json

        input_path = tmp_path / "requests.jsonl"
        output_path = tmp_path / "results.jsonl"
        lines = [
            {"op": "register", "doc": "site", "xml_file": xml_file},
            {"doc": "site", "query": "Q(i) <- item(i), Child(i, p), payment(p)"},
            {"doc": "site", "xpath": "//item", "propagator": "hybrid", "limit": 1},
        ]
        input_path.write_text("\n".join(json.dumps(line) for line in lines))
        exit_code = main(
            ["batch", "--input", str(input_path), "--output", str(output_path)]
        )
        assert exit_code == 0
        results = [json.loads(line) for line in output_path.read_text().splitlines()]
        assert results[0]["ok"] and results[0]["doc"] == "site"
        assert results[1]["count"] == 1
        assert results[2]["truncated"] and results[2]["count"] == 2
        assert results[2]["propagator"] == "hybrid"

    def test_register_is_a_barrier_for_later_queries(self, tmp_path):
        import json

        input_path = tmp_path / "requests.jsonl"
        output_path = tmp_path / "results.jsonl"
        lines = [
            {"doc": "late", "query": "Q(x) <- B(x)"},  # doc not registered yet
            {"op": "register", "doc": "late", "sexpr": "(A (B))"},
            {"doc": "late", "query": "Q(x) <- B(x)"},
        ]
        input_path.write_text("\n".join(json.dumps(line) for line in lines))
        exit_code = main(
            ["batch", "--input", str(input_path), "--output", str(output_path)]
        )
        assert exit_code == 1  # the early query failed
        results = [json.loads(line) for line in output_path.read_text().splitlines()]
        assert "unknown document" in results[0]["error"]
        assert results[1]["ok"]
        assert results[2]["answers"] == [[1]]

    def test_unknown_op_is_reported_not_misrouted(self, tmp_path):
        import json

        input_path = tmp_path / "requests.jsonl"
        output_path = tmp_path / "results.jsonl"
        input_path.write_text(
            json.dumps({"op": "registre", "doc": "d", "xml": "<a/>"}) + "\n"
        )
        assert main(["batch", "--input", str(input_path), "--output", str(output_path)]) == 1
        result = json.loads(output_path.read_text().splitlines()[0])
        assert "unknown op 'registre'" in result["error"]

    def test_malformed_lines_reported_in_order(self, tmp_path):
        import json

        input_path = tmp_path / "requests.jsonl"
        output_path = tmp_path / "results.jsonl"
        input_path.write_text("this is not json\n")
        assert main(["batch", "--input", str(input_path), "--output", str(output_path)]) == 1
        results = [json.loads(line) for line in output_path.read_text().splitlines()]
        assert "line 1" in results[0]["error"]

    def test_document_preregistration_flag(self, tmp_path, xml_file):
        import json

        input_path = tmp_path / "requests.jsonl"
        output_path = tmp_path / "results.jsonl"
        input_path.write_text(json.dumps({"doc": "site", "xpath": "//payment"}) + "\n")
        exit_code = main(
            [
                "batch",
                "--document",
                f"site={xml_file}",
                "--input",
                str(input_path),
                "--output",
                str(output_path),
            ]
        )
        assert exit_code == 0
        result = json.loads(output_path.read_text().splitlines()[0])
        assert result["count"] == 1

    def test_bad_document_flag_errors_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="--document expects"):
            main(["batch", "--document", "nonsense", "--input", "-"])
        with pytest.raises(SystemExit, match="cannot pre-register"):
            main(["batch", "--document", f"d={tmp_path / 'missing.xml'}", "--input", "-"])


class TestServeParser:
    def test_serve_arguments_parse(self):
        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--port", "0", "--capacity", "4", "--workers", "2"]
        )
        assert args.command == "serve"
        assert args.port == 0 and args.capacity == 4 and args.workers == 2


class TestOtherCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "NP-hard (5.1)" in output

    def test_parser_structure(self):
        parser = build_parser()
        args = parser.parse_args(["classify", "Child"])
        assert args.command == "classify"
        with pytest.raises(SystemExit):
            parser.parse_args(["unknown-command"])
