"""Property tests pinning the columnar kernels to the bisection primitives.

The staircase-merge / galloping-intersection kernels of
:mod:`repro.trees.columnar` must return byte-identical results to the
per-candidate interval primitives of :mod:`repro.trees.index` (``range_count``,
``has_successor_in``, ``has_predecessor_in``) on every axis, every support
set, and every :class:`~repro.trees.index.MutableDomainView` deletion state --
the columnar paths are pure performance refactors, so any divergence is a bug.
The same goes one level up: the columnar fixpoints (AC-3 worklist, AC-4
counter init, hybrid) and the columnar bag materialization must compute
exactly what their per-candidate ablations compute.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.decomposition.yannakakis import evaluate_answers
from repro.evaluation.ac4 import ac4_fixpoint, hybrid_fixpoint
from repro.evaluation.arc_consistency import (
    _unsupported_backward,
    _unsupported_forward,
    maximal_arc_consistent,
)
from repro.queries.atoms import AxisAtom, LabelAtom
from repro.queries.query import ConjunctiveQuery
from repro.trees import Axis, Tree, TreeStructure, random_tree
from repro.trees.columnar import (
    ancestor_counts,
    casualties,
    cumulative_end_membership,
    cumulative_membership,
    descendant_counts,
    membership_mask,
    survivors,
    threshold_casualties_by_end,
)
from repro.trees.index import range_count

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

ALPHABET = ("A", "B", "C")

#: Every axis the revise kernels may see (interval, local, sibling, extras).
KERNEL_AXES = (
    Axis.CHILD,
    Axis.CHILD_PLUS,
    Axis.CHILD_STAR,
    Axis.NEXT_SIBLING,
    Axis.NEXT_SIBLING_PLUS,
    Axis.NEXT_SIBLING_STAR,
    Axis.FOLLOWING,
    Axis.DOCUMENT_ORDER,
    Axis.SUCC_PRE,
)


@st.composite
def trees(draw, min_size: int = 1, max_size: int = 16) -> Tree:
    size = draw(st.integers(min_value=min_size, max_value=max_size))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return random_tree(
        size,
        alphabet=ALPHABET,
        max_children=3,
        unlabeled_probability=draw(st.sampled_from([0.0, 0.2])),
        seed=seed,
    )


@st.composite
def tree_and_subsets(draw):
    """A tree plus two random node subsets (watched candidates, support)."""
    tree = draw(trees())
    n = len(tree)
    rng = random.Random(draw(st.integers(min_value=0, max_value=10_000)))
    watched = sorted(rng.sample(range(n), rng.randint(0, n)))
    support = sorted(rng.sample(range(n), rng.randint(0, n)))
    return tree, watched, support


@st.composite
def queries(draw, axes, max_variables: int = 4) -> ConjunctiveQuery:
    num_variables = draw(st.integers(min_value=2, max_value=max_variables))
    variables = [f"v{i}" for i in range(num_variables)]
    num_atoms = draw(st.integers(min_value=1, max_value=num_variables + 2))
    rng = random.Random(draw(st.integers(min_value=0, max_value=10_000)))
    atoms: list = []
    for _ in range(num_atoms):
        source, target = rng.sample(variables, 2)
        atoms.append(AxisAtom(rng.choice(list(axes)), source, target))
    for variable in variables:
        if rng.random() < 0.5:
            atoms.append(LabelAtom(rng.choice(ALPHABET), variable))
    return ConjunctiveQuery((), tuple(atoms), "H")


class TestCumulativeColumns:
    @SETTINGS
    @given(tree_and_subsets())
    def test_cumulative_membership_counts_prefix(self, data):
        tree, _, support = data
        n = len(tree)
        cum = cumulative_membership(support, n)
        assert len(cum) == n + 1
        for j in range(n + 1):
            assert cum[j] == sum(1 for s in support if s < j)
            assert cum[j] == range_count(support, 0, j)

    @SETTINGS
    @given(tree_and_subsets())
    def test_cumulative_end_membership_counts_closed_subtrees(self, data):
        tree, _, support = data
        n = len(tree)
        end = tree.subtree_end
        cum_end = cumulative_end_membership(support, end, n)
        for j in range(n + 1):
            assert cum_end[j] == sum(1 for s in support if end[s] < j)

    @SETTINGS
    @given(tree_and_subsets())
    def test_membership_mask(self, data):
        tree, _, support = data
        mask = membership_mask(support, len(tree))
        assert [i for i, bit in enumerate(mask) if bit] == support


class TestCountKernels:
    @SETTINGS
    @given(tree_and_subsets(), st.booleans())
    def test_descendant_counts_match_range_count(self, data, include_self):
        tree, watched, support = data
        index = tree.index
        cum = cumulative_membership(support, len(tree))
        counts = descendant_counts(watched, index.subtree_end_plus1, cum, include_self)
        for u, count in zip(watched, counts):
            lo = u if include_self else u + 1
            assert count == range_count(support, lo, tree.subtree_end[u] + 1)

    @SETTINGS
    @given(tree_and_subsets(), st.booleans())
    def test_ancestor_counts_match_parent_chain(self, data, include_self):
        tree, watched, support = data
        n = len(tree)
        cum = cumulative_membership(support, n)
        cum_end = cumulative_end_membership(support, tree.subtree_end, n)
        mask = membership_mask(support, n) if include_self else None
        counts = ancestor_counts(watched, cum, cum_end, mask)
        support_set = set(support)
        for u, count in zip(watched, counts):
            expected = 1 if include_self and u in support_set else 0
            node = tree.parent[u]
            while node >= 0:
                expected += node in support_set
                node = tree.parent[node]
            assert count == expected

    @SETTINGS
    @given(tree_and_subsets())
    def test_survivors_and_casualties_partition(self, data):
        tree, watched, support = data
        cum = cumulative_membership(support, len(tree))
        counts = descendant_counts(watched, tree.index.subtree_end_plus1, cum, False)
        kept = survivors(watched, counts)
        dead = casualties(watched, counts)
        assert sorted(kept + dead) == watched
        assert all(count > 0 for u, count in zip(watched, counts) if u in set(kept))

    @SETTINGS
    @given(tree_and_subsets())
    def test_following_threshold_matches_definition(self, data):
        tree, watched, support = data
        if not support:
            return
        bound = support[-1]
        dead = threshold_casualties_by_end(watched, tree.subtree_end, bound)
        expected = [u for u in watched if tree.subtree_end[u] >= bound]
        assert dead == expected


class TestUnsupportedKernels:
    """The bulk revise kernels vs brute-force witness search, on every axis."""

    @SETTINGS
    @given(tree_and_subsets(), st.sampled_from(KERNEL_AXES))
    def test_unsupported_forward_matches_brute_force(self, data, axis):
        tree, watched, support = data
        structure = TreeStructure(tree)
        index = tree.index
        watched_view = index.mutable_view(watched)
        support_view = index.mutable_view(support)
        dead = _unsupported_forward(axis, watched_view, support_view, index, structure)
        support_set = set(support)
        expected = [
            u
            for u in watched
            if not any(structure.axis_holds(axis, u, v) for v in support_set)
        ]
        assert list(dead) == expected

    @SETTINGS
    @given(tree_and_subsets(), st.sampled_from(KERNEL_AXES))
    def test_unsupported_backward_matches_brute_force(self, data, axis):
        tree, watched, support = data
        structure = TreeStructure(tree)
        index = tree.index
        watched_view = index.mutable_view(watched)
        support_view = index.mutable_view(support)
        dead = _unsupported_backward(axis, watched_view, support_view, index, structure)
        support_set = set(support)
        expected = [
            w
            for w in watched
            if not any(structure.axis_holds(axis, u, w) for u in support_set)
        ]
        assert list(dead) == expected

    @SETTINGS
    @given(tree_and_subsets(), st.sampled_from(KERNEL_AXES))
    def test_kernels_respect_view_deletion_state(self, data, axis):
        """Aggregates rebuilt after discards: kernels see only live members."""
        tree, watched, support = data
        structure = TreeStructure(tree)
        index = tree.index
        support_view = index.mutable_view(range(len(tree)))
        # Force the cached aggregates, then invalidate them through discards.
        support_view.cum_pre, support_view.cum_end, support_view.live_mask
        for node in range(len(tree)):
            if node not in set(support):
                support_view.discard(node)
        watched_view = index.mutable_view(watched)
        fresh_support = index.mutable_view(support)
        assert list(support_view.array) == list(fresh_support.array)
        assert support_view.cum_pre == fresh_support.cum_pre
        assert support_view.cum_end == fresh_support.cum_end
        assert support_view.live_mask == fresh_support.live_mask
        assert list(
            _unsupported_forward(axis, watched_view, support_view, index, structure)
        ) == list(
            _unsupported_forward(axis, watched_view, fresh_support, index, structure)
        )


class TestFixpointAblation:
    """Columnar fixpoints are byte-identical to their per-candidate ablations."""

    @SETTINGS
    @given(trees(), queries(KERNEL_AXES))
    def test_ac3_worklist_columnar_matches_per_candidate(self, tree, query):
        structure = TreeStructure(tree)
        fast = maximal_arc_consistent(query, structure, columnar=True)
        slow = maximal_arc_consistent(query, structure, columnar=False)
        assert fast == slow

    @SETTINGS
    @given(trees(), queries(KERNEL_AXES))
    def test_ac4_columnar_matches_per_candidate(self, tree, query):
        structure = TreeStructure(tree)
        fast = ac4_fixpoint(query, structure, columnar=True)
        slow = ac4_fixpoint(query, structure, columnar=False)
        if fast is None or slow is None:
            assert fast is None and slow is None
            return
        assert {v: set(view.members) for v, view in fast.items()} == {
            v: set(view.members) for v, view in slow.items()
        }

    @SETTINGS
    @given(trees(), queries(KERNEL_AXES))
    def test_hybrid_columnar_matches_per_candidate(self, tree, query):
        structure = TreeStructure(tree)
        fast = hybrid_fixpoint(query, structure, columnar=True)
        slow = hybrid_fixpoint(query, structure, columnar=False)
        if fast is None or slow is None:
            assert fast is None and slow is None
            return
        assert {v: set(view.members) for v, view in fast.items()} == {
            v: set(view.members) for v, view in slow.items()
        }

    @SETTINGS
    @given(
        trees(),
        queries((Axis.CHILD, Axis.CHILD_PLUS, Axis.FOLLOWING)),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_columnar_fixpoint_with_pinning(self, tree, query, seed):
        structure = TreeStructure(tree)
        rng = random.Random(seed)
        pinned = {rng.choice(query.variables()): rng.randrange(len(tree))}
        assert maximal_arc_consistent(
            query, structure, pinned, columnar=True
        ) == maximal_arc_consistent(query, structure, pinned, columnar=False)


class TestDecompositionColumnar:
    @SETTINGS
    @given(trees(), queries((Axis.CHILD, Axis.CHILD_PLUS, Axis.FOLLOWING)))
    def test_bag_materialization_bulk_tail_matches(self, tree, query):
        rng = random.Random(len(tree) + len(query.body))
        body_variables = sorted({v for atom in query.body for v in atom.variables()})
        head = tuple(rng.sample(body_variables, rng.randint(0, min(2, len(body_variables)))))
        kary = query.with_head(head)
        structure = TreeStructure(tree)
        fast = evaluate_answers(kary, structure, columnar=True)
        slow = evaluate_answers(kary, structure, columnar=False)
        assert repr(sorted(fast)) == repr(sorted(slow))
