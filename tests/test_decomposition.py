"""Tests for the structural decomposition engine.

Covers the three layers of ``repro.decomposition`` -- the hypergraph/GYO
acyclicity test, the tree-decomposition search, the Yannakakis evaluator --
plus the planner routing, the compiled-query caching and the index's witness
enumeration primitives the evaluator is built on.
"""

from __future__ import annotations

import random

import pytest

from repro.decomposition import (
    Hypergraph,
    TreeDecomposition,
    decompose_hypergraph,
    evaluate_answers,
    exact_elimination_order,
    gyo_reduction,
    is_alpha_acyclic,
    min_degree_order,
    min_fill_order,
    query_hypergraph,
)
from repro.decomposition.decompose import decomposition_from_order
from repro.evaluation import (
    MAX_AUTO_DECOMPOSITION_WIDTH,
    Engine,
    choose_engine,
    compile_query,
    evaluate,
    is_satisfied,
)
from repro.queries import ConjunctiveQuery, is_acyclic, parse_query
from repro.queries.atoms import AxisAtom, LabelAtom
from repro.trees import Axis, TreeStructure, random_tree
from repro.trees.axes import predecessors as reference_predecessors
from repro.trees.axes import successors as reference_successors

TRIANGLE = "Q <- A(x), Child+(x, y), Child+(x, z), Following(y, z)"
DIAMOND = (
    "Q <- Child+(x, y), Child+(x, z), Following(y, z), Child+(y, w), Child+(z, w)"
)
K4 = (
    "Q <- Child(a, b), Child+(a, c), Following(a, d), "
    "Child+(b, c), Child(b, d), Following(c, d)"
)


def _graph(edges):
    vertices = sorted({v for edge in edges for v in edge})
    return Hypergraph.of_edges(vertices, edges)


class TestHypergraphGYO:
    def test_path_is_alpha_acyclic(self):
        assert is_alpha_acyclic(_graph([("a", "b"), ("b", "c"), ("c", "d")]))

    def test_triangle_is_not_alpha_acyclic(self):
        assert not is_alpha_acyclic(_graph([("a", "b"), ("b", "c"), ("c", "a")]))

    def test_triangle_plus_covering_edge_is_alpha_acyclic(self):
        # The classical example: adding the 3-ary edge {a,b,c} makes the
        # triangle alpha-acyclic (the big edge absorbs the small ones).
        hypergraph = Hypergraph.of_edges(
            ("a", "b", "c"),
            [("a", "b"), ("b", "c"), ("c", "a"), ("a", "b", "c")],
        )
        assert is_alpha_acyclic(hypergraph)

    def test_parallel_binary_edges_are_absorbed(self):
        # Unlike the paper's shadow-multigraph notion, duplicated vertex sets
        # do not make a hypergraph cyclic.
        assert is_alpha_acyclic(_graph([("a", "b"), ("a", "b")]))

    def test_join_forest_children_precede_parents(self):
        hypergraph = _graph([("a", "b"), ("b", "c"), ("c", "d")])
        result = gyo_reduction(hypergraph)
        assert result.acyclic
        seen = set()
        for index in result.elimination_order:
            parent = result.parent[index]
            assert parent == -1 or parent not in seen
            seen.add(index)

    def test_gyo_matches_query_graph_acyclicity_on_random_queries(self):
        # On binary-edge hypergraphs *without* parallel atoms, GYO acyclicity
        # coincides with the paper's shadow-forest notion.
        rng = random.Random(7)
        axes = [Axis.CHILD, Axis.CHILD_PLUS, Axis.FOLLOWING, Axis.NEXT_SIBLING_PLUS]
        for _ in range(100):
            variables = [f"v{i}" for i in range(rng.randint(2, 6))]
            pairs = set()
            while len(pairs) < rng.randint(1, len(variables) + 2):
                pair = tuple(sorted(rng.sample(variables, 2)))
                pairs.add(pair)
            atoms = tuple(AxisAtom(rng.choice(axes), a, b) for a, b in sorted(pairs))
            query = ConjunctiveQuery((), atoms, "G")
            compiled = compile_query(query)
            assert is_alpha_acyclic(query_hypergraph(compiled)) == is_acyclic(query)

    def test_primal_edges(self):
        hypergraph = Hypergraph.of_edges(("a", "b", "c"), [("a", "b", "c")])
        assert hypergraph.primal_edges() == frozenset(
            {
                frozenset({"a", "b"}),
                frozenset({"a", "c"}),
                frozenset({"b", "c"}),
            }
        )


class TestDecompose:
    @pytest.mark.parametrize(
        "edges, width",
        [
            ([("a", "b"), ("b", "c"), ("c", "d")], 1),  # path
            ([("a", "b"), ("b", "c"), ("c", "a")], 2),  # triangle
            ([("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")], 2),  # C4
            (
                [
                    ("a", "b"),
                    ("a", "c"),
                    ("a", "d"),
                    ("b", "c"),
                    ("b", "d"),
                    ("c", "d"),
                ],
                3,
            ),  # K4
        ],
    )
    def test_exact_treewidth_on_known_graphs(self, edges, width):
        hypergraph = _graph(edges)
        decomposition = decompose_hypergraph(hypergraph)
        assert decomposition.exact
        assert decomposition.width == width
        decomposition.validate(hypergraph)

    def test_exact_dp_matches_heuristics_at_most(self):
        # Heuristic orders can only over-estimate the exact width.
        rng = random.Random(3)
        for _ in range(40):
            vertices = [f"v{i}" for i in range(rng.randint(2, 8))]
            edges = set()
            for _ in range(rng.randint(1, 2 * len(vertices))):
                edges.add(tuple(sorted(rng.sample(vertices, 2))))
            hypergraph = Hypergraph.of_edges(vertices, sorted(edges))
            adjacency = hypergraph.adjacency()
            _, exact_width = exact_elimination_order(adjacency)
            for order_fn, name in (
                (min_fill_order, "min-fill"),
                (min_degree_order, "min-degree"),
            ):
                decomposition = decomposition_from_order(
                    adjacency, order_fn(adjacency), name
                )
                decomposition.validate(hypergraph)
                assert decomposition.width >= exact_width

    def test_heuristic_path_used_above_exact_limit(self):
        variables = [f"v{i}" for i in range(20)]
        atoms = tuple(
            AxisAtom(Axis.CHILD_PLUS, variables[i], variables[i + 1])
            for i in range(19)
        )
        compiled = compile_query(ConjunctiveQuery((), atoms, "Long"))
        decomposition = compiled.decomposition
        assert not decomposition.exact
        assert decomposition.method in ("min-fill", "min-degree")
        assert decomposition.width == 1

    def test_isolated_variables_get_bags(self):
        query = ConjunctiveQuery((), (LabelAtom("A", "x"), LabelAtom("B", "y")), "Iso")
        decomposition = compile_query(query).decomposition
        covered = set().union(*decomposition.bags) if decomposition.bags else set()
        assert covered == {"x", "y"}

    def test_decomposition_cached_on_compiled_query(self):
        compiled = compile_query(parse_query(TRIANGLE))
        assert compiled.decomposition is compiled.decomposition

    def test_parents_precede_children(self):
        decomposition = compile_query(parse_query(DIAMOND)).decomposition
        for index, parent in enumerate(decomposition.parent):
            assert parent < index

    def test_validate_rejects_uncovered_edge(self):
        bad = TreeDecomposition(
            bags=(frozenset({"a", "b"}),),
            parent=(-1,),
            width=1,
            method="bogus",
            exact=False,
        )
        with pytest.raises(ValueError):
            bad.validate(_graph([("a", "b"), ("b", "c")]))


class TestPlannerRouting:
    def test_cyclic_bounded_width_routes_to_decomposition(self):
        query = parse_query(TRIANGLE)
        assert choose_engine(query) is Engine.DECOMPOSITION
        assert compile_query(query).decomposition.width <= MAX_AUTO_DECOMPOSITION_WIDTH

    def test_high_width_routes_to_backtracking(self):
        query = parse_query(K4)
        assert compile_query(query).decomposition.width == 3
        assert choose_engine(query) is Engine.BACKTRACKING

    def test_tractable_signature_still_wins(self):
        # A cyclic query over {Child+, Child*} stays with the X-property
        # evaluator: the dichotomy routing is unchanged.
        query = parse_query("Q <- Child+(x, y), Child*(y, z), Child+(z, x)")
        assert choose_engine(query) is Engine.XPROPERTY

    def test_acyclic_still_wins(self):
        query = parse_query("Q <- Child(x, y), Following(y, z)")
        assert choose_engine(query) is Engine.ACYCLIC


class TestYannakakisEvaluation:
    @pytest.fixture(scope="class")
    def structure(self):
        return TreeStructure(random_tree(160, alphabet=("A", "B", "C"), seed=11))

    @pytest.mark.parametrize("propagator", ["ac4", "ac3", "horn", "hybrid"])
    def test_triangle_matches_backtracking(self, structure, propagator):
        query = parse_query("Q(x) <- A(x), Child+(x, y), Child+(x, z), Following(y, z)")
        assert sorted(
            evaluate(query, structure, engine=Engine.DECOMPOSITION, propagator=propagator)
        ) == sorted(
            evaluate(query, structure, engine=Engine.BACKTRACKING, propagator=propagator)
        )

    def test_unsatisfiable_diamond_is_empty(self, structure):
        # Following(y, z) contradicts y and z sharing the descendant w.
        query = parse_query(DIAMOND)
        assert evaluate(query, structure, engine=Engine.DECOMPOSITION) == frozenset()

    def test_binary_head(self, structure):
        query = parse_query(
            "Q(x, y) <- A(x), B(y), Child+(x, y), Child+(x, z), Following(y, z)"
        )
        assert evaluate(query, structure, engine=Engine.DECOMPOSITION) == evaluate(
            query, structure, engine=Engine.BACKTRACKING
        )

    def test_repeated_head_variable(self, structure):
        query = parse_query("Q(x, x) <- A(x), Child+(x, y), Child+(x, z), Following(y, z)")
        assert evaluate(query, structure, engine=Engine.DECOMPOSITION) == evaluate(
            query, structure, engine=Engine.BACKTRACKING
        )

    def test_forced_on_acyclic_query(self, structure):
        query = parse_query("Q(x) <- A(x), Child(x, y), B(y)")
        assert evaluate(query, structure, engine=Engine.DECOMPOSITION) == evaluate(
            query, structure
        )

    def test_boolean_and_pinned(self, structure):
        query = parse_query(TRIANGLE)
        assert is_satisfied(query, structure, Engine.DECOMPOSITION) == is_satisfied(
            query, structure, Engine.BACKTRACKING
        )
        for node in (0, 1, 5, 17):
            assert is_satisfied(
                query, structure, Engine.DECOMPOSITION, pinned={"x": node}
            ) == is_satisfied(
                query, structure, Engine.BACKTRACKING, pinned={"x": node}
            )

    def test_high_width_query_still_exact(self, structure):
        # Routing avoids K4-shaped queries, but forcing the engine must still
        # give exact answers (the width bound is a preference, not a limit).
        query = parse_query(K4)
        assert is_satisfied(query, structure, Engine.DECOMPOSITION) == is_satisfied(
            query, structure, Engine.BACKTRACKING
        )

    def test_empty_body(self, structure):
        query = parse_query("Q <- true")
        assert evaluate_answers(query, structure) == frozenset({()})

    def test_disconnected_components(self, structure):
        query = parse_query(
            "Q(x, u) <- A(x), Child+(x, y), Child+(x, z), Following(y, z), "
            "B(u), Child(u, v), C(v)"
        )
        assert evaluate(query, structure, engine=Engine.DECOMPOSITION) == evaluate(
            query, structure, engine=Engine.BACKTRACKING
        )

    def test_self_loop_atoms(self, structure):
        query = ConjunctiveQuery(
            ("x",),
            (
                AxisAtom(Axis.CHILD_STAR, "x", "x"),
                AxisAtom(Axis.CHILD, "x", "y"),
                AxisAtom(Axis.CHILD_PLUS, "x", "y"),
                LabelAtom("A", "x"),
            ),
            "Loop",
        )
        assert evaluate(query, structure, engine=Engine.DECOMPOSITION) == evaluate(
            query, structure, engine=Engine.BACKTRACKING
        )


class TestWitnessEnumeration:
    @pytest.mark.parametrize(
        "axis",
        [
            Axis.CHILD,
            Axis.CHILD_PLUS,
            Axis.CHILD_STAR,
            Axis.NEXT_SIBLING,
            Axis.NEXT_SIBLING_PLUS,
            Axis.NEXT_SIBLING_STAR,
            Axis.FOLLOWING,
            Axis.DOCUMENT_ORDER,
            Axis.SUCC_PRE,
            Axis.SELF,
            Axis.PARENT,
            Axis.ANCESTOR,
            Axis.PRECEDING,
            Axis.PRECEDING_SIBLING,
        ],
    )
    def test_matches_reference_enumeration(self, axis):
        rng = random.Random(13)
        for seed in range(5):
            tree = random_tree(30, alphabet=("A", "B"), max_children=3, seed=seed)
            structure = TreeStructure(tree)
            index = structure.index
            candidates = sorted(rng.sample(range(len(tree)), 12))
            view = index.view(candidates)
            member_set = set(candidates)
            for node in range(len(tree)):
                expected_succ = sorted(
                    v for v in reference_successors(tree, axis, node) if v in member_set
                )
                assert list(index.successors_in(axis, node, view)) == expected_succ
                expected_pred = sorted(
                    u for u in reference_predecessors(tree, axis, node) if u in member_set
                )
                assert list(index.predecessors_in(axis, node, view)) == expected_pred


class TestServingIntegration:
    def test_cache_entry_reports_width_and_engine(self):
        from repro.service import QueryCache

        cache = QueryCache()
        entry, _ = cache.resolve_text(TRIANGLE)
        description = entry.describe()
        assert description["engine"] == "decomposition"
        assert description["width"] == 2
        # The decomposition is resident on the shared compiled artifact.
        assert "decomposition" in entry.compiled.__dict__

    def test_batch_executor_uses_decomposition_engine(self):
        from repro.service import BatchExecutor, DocumentStore, QueryCache, Request

        store = DocumentStore()
        store.register_tree("doc", random_tree(80, alphabet=("A", "B", "C"), seed=3))
        executor = BatchExecutor(store, QueryCache())
        try:
            [result] = executor.execute_batch(
                [
                    Request(
                        doc="doc",
                        query="Q(x) <- A(x), Child+(x, y), Child+(x, z), Following(y, z)",
                    )
                ]
            )
        finally:
            executor.close()
        assert result.ok
        assert result.engine == "decomposition"
        structure = TreeStructure(random_tree(80, alphabet=("A", "B", "C"), seed=3))
        expected = sorted(
            evaluate(
                parse_query("Q(x) <- A(x), Child+(x, y), Child+(x, z), Following(y, z)"),
                structure,
                engine=Engine.BACKTRACKING,
            )
        )
        assert result.answers == [tuple(answer) for answer in expected]
