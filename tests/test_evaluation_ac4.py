"""Tests for the AC-4 support-counting engine and the propagator dimension.

The key invariant: all propagation engines (AC-4 support counting, the AC-3
worklist with either revise step, and the Horn-SAT transcription) compute the
same unique subset-maximal arc-consistent prevaluation.  The hypothesis
property test below asserts fixpoint equality on random trees x random
signatures, including pinned-variable instances.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.evaluation import (
    Propagator,
    evaluate,
    is_satisfied,
    maximal_arc_consistent,
    maximal_arc_consistent_ac4,
    maximal_arc_consistent_horn,
    maximal_arc_consistent_hybrid,
    propagate,
)
from repro.evaluation.ac4 import ac4_fixpoint
from repro.evaluation.acyclic import iter_satisfactions
from repro.queries import parse_query
from repro.queries.atoms import AxisAtom, LabelAtom
from repro.queries.query import ConjunctiveQuery
from repro.trees import Tree, TreeStructure, random_tree
from repro.trees.axes import AX, Axis
from repro.trees.index import MutableDomainView

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

ALPHABET = ("A", "B", "C")

#: Every axis the compiler can emit, plus the inverse axes it normalises away.
ALL_AXES = tuple(AX) + (
    Axis.DOCUMENT_ORDER,
    Axis.SUCC_PRE,
    Axis.SELF,
    Axis.PARENT,
    Axis.ANCESTOR,
    Axis.ANCESTOR_OR_SELF,
    Axis.PREVIOUS_SIBLING,
    Axis.PRECEDING_SIBLING,
    Axis.PRECEDING,
)


def _as_sets(domains):
    return None if domains is None else {v: set(nodes) for v, nodes in domains.items()}


# ---------------------------------------------------------------------------
# MutableDomainView.
# ---------------------------------------------------------------------------


class TestMutableDomainView:
    def _view(self, tree: Tree, nodes) -> MutableDomainView:
        return tree.index.mutable_view(nodes)

    def test_discard_and_liveness(self, sentence_tree):
        view = self._view(sentence_tree, range(9))
        assert len(view) == 9
        assert view.discard(4)
        assert not view.discard(4)  # already gone
        assert 4 not in view
        assert len(view) == 8
        assert list(view.array) == [0, 1, 2, 3, 5, 6, 7, 8]

    def test_compaction_keeps_dead_fraction_bounded(self, sentence_tree):
        view = self._view(sentence_tree, range(9))
        for node in range(0, 9, 2):
            view.discard(node)
        # At most half of the backing array may be dead.
        assert len(view.unpruned_array) <= 2 * len(view)
        assert list(view.array) == [1, 3, 5, 7]

    def test_iter_live_range_skips_dead(self, sentence_tree):
        view = self._view(sentence_tree, range(9))
        view.discard(3)
        assert list(view.iter_live_range(2, 6)) == [2, 4, 5]

    def test_aggregates_invalidate_on_discard(self, sentence_tree):
        view = self._view(sentence_tree, range(9))
        before = view.min_end
        # Node 8 (the PP leaf) has the largest subtree_end contribution via
        # prefix_max_end; dropping low-end members must refresh min_end.
        assert view.prefix_max_end[-1] == 8
        view.discard(2)  # a leaf: subtree_end == 2, the current minimum
        assert view.min_end != before or view.min_end == min(
            sentence_tree.subtree_end[node] for node in view.members
        )
        assert view.min_end == min(
            sentence_tree.subtree_end[node] for node in view.members
        )

    def test_implements_domain_view_protocol(self, sentence_tree):
        """The index witness primitives accept maintained views directly."""
        index = sentence_tree.index
        view = self._view(sentence_tree, range(9))
        view.discard(3)
        view.discard(7)
        frozen = index.view(view.members)
        for axis in (Axis.CHILD, Axis.CHILD_PLUS, Axis.FOLLOWING, Axis.NEXT_SIBLING_PLUS):
            for node in sentence_tree.node_ids():
                assert index.has_successor_in(axis, node, view) == index.has_successor_in(
                    axis, node, frozen
                )
                assert index.has_predecessor_in(
                    axis, node, view
                ) == index.has_predecessor_in(axis, node, frozen)


# ---------------------------------------------------------------------------
# AC-4 engine: deterministic cases.
# ---------------------------------------------------------------------------


class TestAc4Engine:
    def test_simple_child_query(self, sentence_structure):
        query = parse_query("Q <- NP(x), Child(x, y), NN(y)")
        domains = maximal_arc_consistent_ac4(query, sentence_structure)
        assert _as_sets(domains) == {"x": {1, 6}, "y": {3, 7}}

    def test_unsatisfiable_returns_none(self, sentence_structure):
        assert maximal_arc_consistent_ac4(
            parse_query("Q <- PP(x), Child(x, y), NN(y)"), sentence_structure
        ) is None
        assert maximal_arc_consistent_ac4(
            parse_query("Q <- Child+(x, x)"), sentence_structure
        ) is None

    def test_self_loop_filter(self, sentence_structure):
        query = parse_query("Q <- Child*(x, x), NP(x)")
        domains = maximal_arc_consistent_ac4(query, sentence_structure)
        assert _as_sets(domains) == {"x": {1, 6}}

    def test_pinned(self, sentence_structure):
        query = parse_query("Q <- NP(x), Child(x, y), NN(y)")
        domains = maximal_arc_consistent_ac4(query, sentence_structure, pinned={"x": 6})
        assert _as_sets(domains) == {"x": {6}, "y": {7}}
        assert (
            maximal_arc_consistent_ac4(query, sentence_structure, pinned={"x": 8}) is None
        )

    def test_pinned_rejected_with_seeded_domains(self, sentence_structure):
        """A seed is expected to embody the pin; the combination is an error."""
        query = parse_query("Q <- NP(x), Child(x, y)")
        with pytest.raises(ValueError, match="pinned cannot be combined"):
            ac4_fixpoint(
                query,
                sentence_structure,
                pinned={"x": 1},
                initial_domains={"x": {1, 6}, "y": {2, 3, 7}},
            )

    def test_fixpoint_views_stay_consistent(self, medium_random_tree):
        """The maintained views equal a fresh view of the final domains."""
        structure = TreeStructure(medium_random_tree)
        query = parse_query("Q <- A(x), Child+(x, y), Following(y, z), B(z)")
        views = ac4_fixpoint(query, structure)
        assert views is not None
        for variable, view in views.items():
            assert sorted(view.members) == list(view.array)
            fresh = structure.index.view(view.members)
            assert list(view.array) == list(fresh.array)
            assert view.min_end == fresh.min_end
            assert view.prefix_max_end == fresh.prefix_max_end

    @pytest.mark.parametrize("axis", sorted(axis.value for axis in AX))
    def test_single_atom_every_ax_axis(self, medium_random_tree, axis):
        structure = TreeStructure(medium_random_tree)
        query = parse_query(f"Q <- A(x), {axis}(x, y), B(y)")
        assert _as_sets(maximal_arc_consistent_ac4(query, structure)) == _as_sets(
            maximal_arc_consistent(query, structure)
        )


# ---------------------------------------------------------------------------
# Property test: all engines reach the same fixpoint.
# ---------------------------------------------------------------------------


@st.composite
def trees(draw, max_size: int = 16) -> Tree:
    size = draw(st.integers(min_value=1, max_value=max_size))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return random_tree(
        size,
        alphabet=ALPHABET,
        max_children=draw(st.sampled_from([2, 4])),
        unlabeled_probability=draw(st.sampled_from([0.0, 0.3])),
        seed=seed,
    )


@st.composite
def queries(draw, axes=ALL_AXES, max_variables: int = 4) -> ConjunctiveQuery:
    num_variables = draw(st.integers(min_value=1, max_value=max_variables))
    variables = [f"v{i}" for i in range(num_variables)]
    rng = random.Random(draw(st.integers(min_value=0, max_value=10_000)))
    atoms: list = []
    for _ in range(draw(st.integers(min_value=1, max_value=num_variables + 2))):
        atoms.append(
            AxisAtom(rng.choice(list(axes)), rng.choice(variables), rng.choice(variables))
        )
    for variable in variables:
        if rng.random() < 0.4:
            atoms.append(LabelAtom(rng.choice(ALPHABET), variable))
    return ConjunctiveQuery((), tuple(atoms), "H")


class TestFixpointEquality:
    @SETTINGS
    @given(trees(), queries(), st.data())
    def test_all_engines_agree(self, tree: Tree, query: ConjunctiveQuery, data):
        structure = TreeStructure(tree)
        pinned = None
        if data.draw(st.booleans(), label="pin a variable"):
            variables = query.variables()
            pinned = {
                data.draw(st.sampled_from(variables), label="pinned variable"): data.draw(
                    st.integers(min_value=0, max_value=len(tree) - 1), label="pinned node"
                )
            }
        ac4 = _as_sets(maximal_arc_consistent_ac4(query, structure, pinned))
        ac3_interval = _as_sets(maximal_arc_consistent(query, structure, pinned))
        ac3_enumeration = _as_sets(
            maximal_arc_consistent(query, structure, pinned, use_index=False)
        )
        horn = _as_sets(maximal_arc_consistent_horn(query, structure, pinned))
        hybrid = _as_sets(maximal_arc_consistent_hybrid(query, structure, pinned))
        assert ac4 == ac3_interval == ac3_enumeration == horn == hybrid

    @SETTINGS
    @given(trees(max_size=12), queries(axes=(Axis.CHILD, Axis.CHILD_PLUS, Axis.FOLLOWING)))
    def test_planner_answers_agree_across_propagators(self, tree, query):
        structure = TreeStructure(tree)
        expected = is_satisfied(query, structure, propagator=Propagator.AC4)
        assert expected == is_satisfied(query, structure, propagator=Propagator.AC3)
        assert expected == is_satisfied(query, structure, propagator=Propagator.HORN)
        assert expected == is_satisfied(query, structure, propagator=Propagator.HYBRID)


# ---------------------------------------------------------------------------
# The propagator dimension and deterministic enumeration.
# ---------------------------------------------------------------------------


class TestPropagatorDimension:
    def test_propagate_accepts_strings(self, sentence_structure):
        query = parse_query("Q <- NP(x), Child(x, y)")
        for propagator in ("ac4", "ac3", "horn", "hybrid"):
            result = propagate(query, sentence_structure, propagator=propagator)
            assert result is not None
            assert result.domains["x"] == {1, 6}
        with pytest.raises(ValueError):
            propagate(query, sentence_structure, propagator="ac5")

    def test_hybrid_result_reuses_maintained_views(self, sentence_structure):
        """The hybrid path ends in AC-4, so it hands over maintained views too."""
        query = parse_query("Q <- NP(x), Child(x, y)")
        result = propagate(query, sentence_structure, propagator=Propagator.HYBRID)
        assert isinstance(result.views["x"], MutableDomainView)
        assert result.sorted_domain("x") == [1, 6]

    def test_ac4_result_reuses_maintained_views(self, sentence_structure):
        query = parse_query("Q <- NP(x), Child(x, y)")
        result = propagate(query, sentence_structure, propagator=Propagator.AC4)
        assert isinstance(result.views["x"], MutableDomainView)
        assert result.views["x"].members is result.domains["x"]
        assert result.sorted_domain("x") == [1, 6]

    def test_evaluate_same_answers_across_propagators(self, sentence_structure):
        query = parse_query("Q(x, y) <- NP(x), Child+(x, y)")
        reference = evaluate(query, sentence_structure, propagator=Propagator.AC4)
        assert reference == evaluate(query, sentence_structure, propagator=Propagator.AC3)
        assert reference == evaluate(
            query, sentence_structure, propagator=Propagator.HORN
        )
        assert reference == evaluate(
            query, sentence_structure, propagator=Propagator.HYBRID
        )
        assert reference  # non-trivial


class TestMonadicAcyclicFastPath:
    """evaluate() reads monadic acyclic answers off the fixpoint directly."""

    def test_normalized_duplicates_still_take_the_fast_path_correctly(
        self, medium_random_tree
    ):
        """Parent(y, x) normalizes to Child(x, y): one constraint, forest."""
        from repro.evaluation import compile_query

        structure = TreeStructure(medium_random_tree)
        query = parse_query("Q(x) <- A(x), Child(x, y), Parent(y, x), B(y)")
        assert compile_query(query).shadow_is_forest
        expected = frozenset(
            (node,)
            for node in medium_random_tree.node_ids()
            if is_satisfied(query, structure, pinned={"x": node})
        )
        assert evaluate(query, structure) == expected

    def test_genuine_parallel_constraints_are_not_a_forest(self, medium_random_tree):
        from repro.evaluation import compile_query

        structure = TreeStructure(medium_random_tree)
        query = parse_query("Q(x) <- Child(x, y), Following(x, y)")
        assert not compile_query(query).shadow_is_forest
        expected = frozenset(
            (node,)
            for node in medium_random_tree.node_ids()
            if is_satisfied(query, structure, pinned={"x": node})
        )
        assert evaluate(query, structure) == expected

    @SETTINGS
    @given(
        trees(max_size=14),
        queries(
            axes=(Axis.CHILD, Axis.CHILD_PLUS, Axis.FOLLOWING, Axis.PARENT),
            max_variables=3,
        ),
    )
    def test_matches_per_candidate_boolean_reduction(self, tree, query):
        structure = TreeStructure(tree)
        body_variables = sorted({v for atom in query.body for v in atom.variables()})
        if not body_variables:
            return
        monadic = query.with_head((body_variables[0],))
        expected = frozenset(
            (node,)
            for node in tree.node_ids()
            if is_satisfied(monadic, structure, pinned={body_variables[0]: node})
        )
        for propagator in Propagator:
            assert evaluate(monadic, structure, propagator=propagator) == expected


class TestDeterministicEnumeration:
    def test_iter_satisfactions_sorted_and_repeatable(self, medium_random_tree):
        structure = TreeStructure(medium_random_tree)
        query = parse_query("Q <- A(x), Child+(x, y), B(y)")
        first = [tuple(sorted(v.items())) for v in iter_satisfactions(query, structure)]
        second = [tuple(sorted(v.items())) for v in iter_satisfactions(query, structure)]
        assert first == second
        # Root variable candidates appear in ascending node order.
        roots = [dict(v)["x"] for v in (dict(items) for items in first)]
        assert roots == sorted(roots)

    def test_enumeration_order_independent_of_propagator(self, medium_random_tree):
        structure = TreeStructure(medium_random_tree)
        query = parse_query("Q <- A(x), Child(x, y), Following(y, z)")
        sequences = {
            propagator: [
                tuple(sorted(v.items()))
                for v in iter_satisfactions(query, structure, propagator=propagator)
            ]
            for propagator in Propagator
        }
        assert sequences[Propagator.AC4] == sequences[Propagator.AC3]
        assert sequences[Propagator.AC4] == sequences[Propagator.HORN]
        assert sequences[Propagator.AC4]  # non-empty on this tree
