"""Tests for arc consistency (Proposition 3.1): worklist and Horn implementations."""

from __future__ import annotations

import pytest

from repro.evaluation import (
    initial_domains,
    is_arc_consistent,
    maximal_arc_consistent,
    maximal_arc_consistent_horn,
    valuation_satisfies,
)
from repro.hardness import random_cyclic_query
from repro.queries import parse_query
from repro.trees import TreeStructure, random_tree
from repro.trees.axes import Axis


class TestInitialDomains:
    def test_label_restriction(self, sentence_structure):
        query = parse_query("Q <- NP(x), Child(x, y)")
        domains = initial_domains(query, sentence_structure)
        assert domains["x"] == {1, 6}
        assert domains["y"] == set(sentence_structure.domain())

    def test_multiple_labels_intersect(self, sentence_structure):
        query = parse_query("Q <- NP(x), VP(x)")
        domains = initial_domains(query, sentence_structure)
        assert domains["x"] == set()

    def test_pinning(self, sentence_structure):
        query = parse_query("Q <- NP(x), Child(x, y)")
        domains = initial_domains(query, sentence_structure, pinned={"x": 6})
        assert domains["x"] == {6}
        with pytest.raises(ValueError):
            initial_domains(query, sentence_structure, pinned={"zzz": 0})


class TestWorklistArcConsistency:
    def test_simple_child_query(self, sentence_structure):
        query = parse_query("Q <- NP(x), Child(x, y), NN(y)")
        domains = maximal_arc_consistent(query, sentence_structure)
        assert domains is not None
        assert domains["x"] == {1, 6}
        assert domains["y"] == {3, 7}

    def test_unsatisfiable_by_labels(self, sentence_structure):
        query = parse_query("Q <- Missing(x), Child(x, y)")
        assert maximal_arc_consistent(query, sentence_structure) is None

    def test_unsatisfiable_by_structure(self, sentence_structure):
        # A PP with an NN child does not exist in the sentence tree.
        query = parse_query("Q <- PP(x), Child(x, y), NN(y)")
        assert maximal_arc_consistent(query, sentence_structure) is None

    def test_result_is_arc_consistent(self, sentence_structure):
        query = parse_query("Q <- S(x), Child+(x, y), NP(y), Following(y, z), PP(z)")
        domains = maximal_arc_consistent(query, sentence_structure)
        assert domains is not None
        assert is_arc_consistent(query, sentence_structure, domains)

    def test_maximality(self, sentence_structure):
        """Every arc-consistent prevaluation is contained in the computed one."""
        query = parse_query("Q <- NP(x), Child(x, y)")
        maximal = maximal_arc_consistent(query, sentence_structure)
        assert maximal is not None
        # A satisfying valuation is a (singleton) arc-consistent prevaluation,
        # so each satisfying value must appear in the maximal domains.
        from repro.evaluation import iter_solutions

        for solution in iter_solutions(query, sentence_structure):
            for variable, node in solution.items():
                assert node in maximal[variable]

    def test_self_loop_atom(self, sentence_structure):
        query = parse_query("Q <- Child*(x, x), NP(x)")
        domains = maximal_arc_consistent(query, sentence_structure)
        assert domains is not None
        assert domains["x"] == {1, 6}
        hard = parse_query("Q <- Child+(x, x)")
        assert maximal_arc_consistent(hard, sentence_structure) is None

    def test_pinned_consistency(self, sentence_structure):
        query = parse_query("Q <- NP(x), Child(x, y), NN(y)")
        domains = maximal_arc_consistent(query, sentence_structure, pinned={"x": 6})
        assert domains is not None
        assert domains["y"] == {7}
        assert maximal_arc_consistent(query, sentence_structure, pinned={"x": 8}) is None

    def test_arc_consistency_no_false_negative_on_satisfiable(self, sentence_structure):
        """If a query is satisfiable, arc consistency must not report failure."""
        from repro.evaluation import iter_solutions

        queries = [
            parse_query("Q <- S(x), Child(x, y), VP(y), Child(y, z), VB(z)"),
            parse_query("Q <- NP(x), Following(x, y), PP(y)"),
            parse_query("Q <- DT(x), NextSibling(x, y), NN(y)"),
        ]
        for query in queries:
            has_solution = any(True for _ in iter_solutions(query, sentence_structure))
            assert has_solution
            assert maximal_arc_consistent(query, sentence_structure) is not None


class TestHornImplementationAgrees:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_same_fixpoint_on_random_inputs(self, seed):
        tree = random_tree(18, alphabet=("A", "B", "C"), seed=seed, unlabeled_probability=0.2)
        structure = TreeStructure(tree)
        query = random_cyclic_query(
            (Axis.CHILD, Axis.CHILD_PLUS, Axis.FOLLOWING, Axis.NEXT_SIBLING_PLUS),
            num_variables=5,
            num_extra_atoms=2,
            seed=seed,
        )
        worklist = maximal_arc_consistent(query, structure)
        horn = maximal_arc_consistent_horn(query, structure)
        assert (worklist is None) == (horn is None)
        if worklist is not None and horn is not None:
            assert worklist == horn

    def test_same_fixpoint_on_sentence(self, sentence_structure):
        query = parse_query("Q <- S(x), Child+(x, y), NP(y), Following(y, z), PP(z)")
        assert maximal_arc_consistent(query, sentence_structure) == maximal_arc_consistent_horn(
            query, sentence_structure
        )

    def test_horn_with_pinning(self, sentence_structure):
        query = parse_query("Q <- NP(x), Child(x, y), NN(y)")
        assert maximal_arc_consistent_horn(
            query, sentence_structure, pinned={"x": 6}
        ) == maximal_arc_consistent(query, sentence_structure, pinned={"x": 6})


class TestValuationSatisfies:
    def test_satisfying_and_violating_valuations(self, sentence_structure):
        query = parse_query("Q <- NP(x), Child(x, y), NN(y)")
        assert valuation_satisfies(query, sentence_structure, {"x": 1, "y": 3})
        assert not valuation_satisfies(query, sentence_structure, {"x": 1, "y": 7})
        assert not valuation_satisfies(query, sentence_structure, {"x": 0, "y": 3})
