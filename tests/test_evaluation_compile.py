"""Tests for the compile-once query pipeline (:mod:`repro.evaluation.compile`)."""

from __future__ import annotations

import pytest

from repro.evaluation import initial_domains
from repro.evaluation.compile import (
    AxisClass,
    classify_axis,
    compile_query,
    normalize_atom,
)
from repro.queries import parse_query
from repro.queries.atoms import AxisAtom
from repro.trees.axes import Axis


class TestNormalization:
    def test_forward_atoms_unchanged(self):
        atom = AxisAtom(Axis.CHILD_PLUS, "x", "y")
        compiled = normalize_atom(atom)
        assert (compiled.axis, compiled.source, compiled.target) == (
            Axis.CHILD_PLUS,
            "x",
            "y",
        )
        assert compiled.original is atom

    @pytest.mark.parametrize(
        "inverse,forward",
        [
            (Axis.PARENT, Axis.CHILD),
            (Axis.ANCESTOR, Axis.CHILD_PLUS),
            (Axis.ANCESTOR_OR_SELF, Axis.CHILD_STAR),
            (Axis.PREVIOUS_SIBLING, Axis.NEXT_SIBLING),
            (Axis.PRECEDING_SIBLING, Axis.NEXT_SIBLING_PLUS),
            (Axis.PRECEDING, Axis.FOLLOWING),
        ],
    )
    def test_inverse_axes_swap_endpoints(self, inverse, forward):
        compiled = normalize_atom(AxisAtom(inverse, "x", "y"))
        assert (compiled.axis, compiled.source, compiled.target) == (forward, "y", "x")

    def test_duplicate_constraints_deduplicated(self):
        query = parse_query("Q <- Child(x, y), Parent(y, x), Child(x, y)")
        compiled = compile_query(query)
        assert len(compiled.atoms) == 1
        assert compiled.atoms[0].axis is Axis.CHILD


class TestClassification:
    def test_interval_local_split(self):
        assert classify_axis(Axis.CHILD_PLUS) is AxisClass.INTERVAL
        assert classify_axis(Axis.FOLLOWING) is AxisClass.INTERVAL
        assert classify_axis(Axis.NEXT_SIBLING_STAR) is AxisClass.INTERVAL
        assert classify_axis(Axis.CHILD) is AxisClass.LOCAL
        assert classify_axis(Axis.SUCC_PRE) is AxisClass.LOCAL
        assert classify_axis(Axis.SELF) is AxisClass.LOCAL

    def test_every_forward_axis_is_indexable(self):
        """After normalization no atom should need the enumeration fallback."""
        for axis in (
            Axis.CHILD,
            Axis.CHILD_PLUS,
            Axis.CHILD_STAR,
            Axis.NEXT_SIBLING,
            Axis.NEXT_SIBLING_PLUS,
            Axis.NEXT_SIBLING_STAR,
            Axis.FOLLOWING,
            Axis.DOCUMENT_ORDER,
            Axis.SUCC_PRE,
            Axis.SELF,
        ):
            assert classify_axis(axis) is not AxisClass.ENUMERATION


class TestStructure:
    def test_variables_and_adjacency(self):
        query = parse_query("Q <- A(x), Child(x, y), B(y), Following(y, z)")
        compiled = compile_query(query)
        assert compiled.variables == ("x", "y", "z")
        assert compiled.variable_index == {"x": 0, "y": 1, "z": 2}
        assert [atom.axis for atom in compiled.atoms_of("y")] == [
            Axis.CHILD,
            Axis.FOLLOWING,
        ]
        assert [atom.other("y") for atom in compiled.atoms_of("y")] == ["x", "z"]

    def test_loops_separated_from_edges(self):
        query = parse_query("Q <- Child*(x, x), Child(x, y)")
        compiled = compile_query(query)
        assert len(compiled.loops) == 1
        assert compiled.loops[0].is_loop
        assert len(compiled.edges) == 1
        # Loops are static filters, not propagation edges.
        assert all(not atom.is_loop for atom in compiled.atoms_of("x"))

    def test_labels_by_variable(self):
        query = parse_query("Q <- A(x), B(x), Child(x, y), A(y)")
        compiled = compile_query(query)
        assert compiled.labels_by_variable["x"] == ("A", "B")
        assert compiled.labels_by_variable["y"] == ("A",)

    def test_compile_is_cached(self):
        query = parse_query("Q <- Child(x, y)")
        assert compile_query(query) is compile_query(query)


class TestInitialDomainRecipe:
    def test_matches_reference_implementation(self, sentence_structure):
        queries = [
            "Q <- NP(x), Child(x, y)",
            "Q <- NP(x), VP(x)",
            "Q <- Child+(x, y), NN(y), Following(y, z)",
        ]
        for text in queries:
            query = parse_query(text)
            compiled = compile_query(query)
            assert compiled.initial_domains(sentence_structure) == initial_domains(
                query, sentence_structure
            )

    def test_pinning(self, sentence_structure):
        query = parse_query("Q <- NP(x), Child(x, y)")
        compiled = compile_query(query)
        domains = compiled.initial_domains(sentence_structure, pinned={"x": 6})
        assert domains["x"] == {6}
        with pytest.raises(ValueError):
            compiled.initial_domains(sentence_structure, pinned={"zzz": 0})
