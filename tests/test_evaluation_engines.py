"""Tests for the evaluation engines: X-property, acyclic, backtracking, planner.

The central correctness property exercised here is *engine agreement*: on
queries where several engines apply, they must produce identical results (the
backtracking engine is the ground truth).
"""

from __future__ import annotations

import pytest

from repro.evaluation import (
    Engine,
    SearchStatistics,
    acyclic,
    boolean_query_holds,
    check_answer,
    choose_engine,
    choose_order,
    count_solutions,
    evaluate,
    evaluate_on_tree,
    evaluate_union,
    find_solution,
    is_satisfied,
    iter_solutions,
    minimum_valuation,
    satisfying_assignment,
    witness,
)
from repro.evaluation.arc_consistency import maximal_arc_consistent
from repro.evaluation.backtracking import boolean_query_holds as bt_holds
from repro.evaluation.xprop_evaluator import XPropertyEvaluationError
from repro.hardness import random_cyclic_query
from repro.queries import as_union, parse_query
from repro.trees import Order, TreeStructure, from_nested, random_tree
from repro.trees.axes import Axis


class TestXPropertyEvaluator:
    def test_tractable_signature_positive(self, sentence_structure):
        query = parse_query("Q <- S(x), Child+(x, y), NP(y), Child+(y, z), NN(z)")
        assert boolean_query_holds(query, sentence_structure, verify=True)

    def test_tractable_signature_negative(self, sentence_structure):
        query = parse_query("Q <- PP(x), Child+(x, y), NN(y)")
        assert not boolean_query_holds(query, sentence_structure)

    def test_following_signature(self, sentence_structure):
        query = parse_query("Q <- Following(x, y), Following(y, z), PP(z)")
        assert boolean_query_holds(query, sentence_structure, verify=True)

    def test_bflr_signature(self, sentence_structure):
        query = parse_query(
            "Q <- NP(x), NextSibling(x, y), VP(y), NextSibling+(y, z), PP(z), Child(y, w), VB(w)"
        )
        assert boolean_query_holds(query, sentence_structure, verify=True)

    def test_rejects_intractable_signature_without_order(self, sentence_structure):
        query = parse_query("Q <- Child(x, y), Child+(y, z)")
        with pytest.raises(ValueError):
            boolean_query_holds(query, sentence_structure)

    def test_choose_order(self):
        assert choose_order(parse_query("Q <- Child+(x, y)")) is Order.PRE
        assert choose_order(parse_query("Q <- Following(x, y)")) is Order.POST
        assert choose_order(parse_query("Q <- Child(x, y), NextSibling(y, z)")) is Order.BFLR
        assert choose_order(parse_query("Q <- Child(x, y), Following(y, z)")) is None

    def test_witness_is_a_satisfaction(self, sentence_structure):
        query = parse_query("Q <- Child+(x, y), NP(y), Child+(y, z), NN(z)")
        valuation = witness(query, sentence_structure)
        assert valuation is not None
        from repro.evaluation import valuation_satisfies

        assert valuation_satisfies(query, sentence_structure, valuation)

    def test_minimum_valuation_failure_detected_off_frontier(self):
        """Forcing a wrong order can break Lemma 3.4 -- the verifier notices.

        The {Child, Child+} signature has no common order; with <pre the
        minimum valuation of this satisfiable query picks inconsistent nodes
        on a suitably crafted tree, demonstrating why the frontier matters.
        """
        tree = from_nested(
            ("R", [("A", [("B", [("C", [])])]), ("A", [("D", [])])])
        )
        structure = TreeStructure(tree)
        query = parse_query("Q <- A(x), Child(x, y), D(y), Child+(z, y), R(z)")
        # The query is satisfiable (second A branch).
        assert bt_holds(query, structure)
        # With the pre-order forced, the minimum valuation may be inconsistent;
        # the evaluator either still answers True (if it happens to work) or
        # the verification raises -- it must never silently answer False.
        try:
            result = boolean_query_holds(query, structure, order=Order.PRE, verify=True)
            assert result is True
        except XPropertyEvaluationError:
            pass

    def test_agreement_with_backtracking_on_random_tractable_queries(self):
        for seed in range(6):
            tree = random_tree(25, alphabet=("A", "B"), seed=seed, unlabeled_probability=0.2)
            structure = TreeStructure(tree)
            query = random_cyclic_query(
                (Axis.CHILD_PLUS, Axis.CHILD_STAR),
                num_variables=5,
                num_extra_atoms=2,
                seed=seed,
            )
            assert boolean_query_holds(query, structure, verify=True) == bt_holds(
                query, structure
            )

    def test_agreement_following_signature(self):
        for seed in range(6):
            tree = random_tree(20, alphabet=("A", "B"), seed=100 + seed)
            structure = TreeStructure(tree)
            query = random_cyclic_query(
                (Axis.FOLLOWING,), num_variables=4, num_extra_atoms=2, seed=seed
            )
            assert boolean_query_holds(query, structure, verify=True) == bt_holds(
                query, structure
            )

    def test_agreement_bflr_signature(self):
        for seed in range(6):
            tree = random_tree(20, alphabet=("A", "B"), seed=200 + seed)
            structure = TreeStructure(tree)
            query = random_cyclic_query(
                (Axis.CHILD, Axis.NEXT_SIBLING, Axis.NEXT_SIBLING_PLUS, Axis.NEXT_SIBLING_STAR),
                num_variables=5,
                num_extra_atoms=2,
                seed=seed,
            )
            assert boolean_query_holds(query, structure, verify=True) == bt_holds(
                query, structure
            )

    def test_minimum_valuation_helper(self, sentence_structure):
        query = parse_query("Q <- NP(x), Child+(x, y)")
        domains = maximal_arc_consistent(query, sentence_structure)
        assert domains is not None
        valuation = minimum_valuation(sentence_structure, domains, Order.PRE)
        assert valuation["x"] == min(domains["x"])


class TestAcyclicEvaluator:
    def test_boolean_and_enumeration(self, sentence_structure):
        query = parse_query("Q <- S(x), Child(x, y), NP(y), Child(y, z), NN(z)")
        assert acyclic.boolean_query_holds(query, sentence_structure)
        solutions = list(acyclic.iter_satisfactions(query, sentence_structure))
        assert {frozenset(s.items()) for s in solutions} == {
            frozenset({("x", 0), ("y", 1), ("z", 3)})
        }
        assert acyclic.count_satisfactions(query, sentence_structure) == 1

    def test_rejects_cyclic_queries(self, sentence_structure):
        query = parse_query("Q <- Child(x, y), Child+(x, y)")
        with pytest.raises(ValueError):
            acyclic.boolean_query_holds(query, sentence_structure)

    def test_unsatisfiable(self, sentence_structure):
        query = parse_query("Q <- PP(x), Child(x, y)")
        assert not acyclic.boolean_query_holds(query, sentence_structure)
        assert list(acyclic.iter_satisfactions(query, sentence_structure)) == []

    def test_agreement_with_backtracking(self, sentence_structure):
        queries = [
            "Q <- NP(x), Following(x, y)",
            "Q <- S(x), Child+(x, y), NP(y), Child(y, z)",
            "Q <- DT(a), NextSibling(a, b), NN(b), Following(b, c)",
            "Q <- VP(x), Child(x, y), VB(y), NextSibling(y, z), NP(z)",
        ]
        for text in queries:
            query = parse_query(text)
            assert acyclic.boolean_query_holds(query, sentence_structure) == bt_holds(
                query, sentence_structure
            )
            lhs = {
                frozenset(s.items())
                for s in acyclic.iter_satisfactions(query, sentence_structure)
            }
            rhs = {
                frozenset(s.items())
                for s in iter_solutions(query, sentence_structure)
            }
            assert lhs == rhs

    def test_multi_component_query(self, sentence_structure):
        query = parse_query("Q <- NP(x), Child(x, y), PP(z)")
        count = acyclic.count_satisfactions(query, sentence_structure)
        # Two NPs with two/one children times one PP.
        assert count == 3


class TestBacktrackingEvaluator:
    def test_cyclic_query(self, sentence_structure):
        query = parse_query("Q <- S(x), Child(x, y), NP(y), Child+(x, z), NN(z), Child(y, z)")
        assert bt_holds(query, sentence_structure)
        solution = find_solution(query, sentence_structure)
        assert solution is not None and solution["y"] == 1

    def test_count_solutions(self, sentence_structure):
        query = parse_query("Q <- NP(x)")
        assert count_solutions(query, sentence_structure) == 2

    def test_without_arc_consistency(self, sentence_structure):
        query = parse_query("Q <- NP(x), Child(x, y), NN(y)")
        fast = set(
            frozenset(s.items()) for s in iter_solutions(query, sentence_structure)
        )
        slow = set(
            frozenset(s.items())
            for s in iter_solutions(query, sentence_structure, use_arc_consistency=False)
        )
        assert fast == slow

    def test_statistics_collected(self, sentence_structure):
        statistics = SearchStatistics()
        query = parse_query("Q <- Child(x, y), Child(y, z)")
        bt_holds(query, sentence_structure, statistics=statistics)
        assert statistics.nodes_expanded > 0

    def test_empty_body_query(self, sentence_structure):
        query = parse_query("Q <- true")
        assert bt_holds(query, sentence_structure)
        assert count_solutions(query, sentence_structure) == 1


class TestPlanner:
    def test_engine_choice(self):
        assert (
            choose_engine(parse_query("Q <- Child+(x, y), Child*(y, z), Child+(z, x)"))
            is Engine.XPROPERTY
        )
        assert choose_engine(parse_query("Q <- Child(x, y), Following(y, z)")) is Engine.ACYCLIC
        # Cyclic (parallel edges / triangles) but of bounded decomposition
        # width: the structural engine takes these now.
        assert (
            choose_engine(parse_query("Q <- Child(x, y), Child+(x, y)"))
            is Engine.DECOMPOSITION
        )
        assert (
            choose_engine(
                parse_query("Q <- Child(x, y), Following(y, z), Child+(x, z)")
            )
            is Engine.DECOMPOSITION
        )
        # Width 3 (a K4 over an NP-hard signature): backtracking remains the
        # fallback beyond MAX_AUTO_DECOMPOSITION_WIDTH.
        assert (
            choose_engine(
                parse_query(
                    "Q <- Child(a, b), Child+(a, c), Following(a, d), "
                    "Child+(b, c), Child(b, d), Following(c, d)"
                )
            )
            is Engine.BACKTRACKING
        )

    def test_is_satisfied_all_engines_agree(self, sentence_structure):
        query = parse_query("Q <- S(x), Child+(x, y), NP(y), Child+(x, z), PP(z)")
        results = {
            engine: is_satisfied(query, sentence_structure, engine)
            for engine in (
                Engine.AUTO,
                Engine.XPROPERTY,
                Engine.ACYCLIC,
                Engine.DECOMPOSITION,
                Engine.BACKTRACKING,
            )
        }
        assert set(results.values()) == {True}

    def test_evaluate_monadic(self, sentence_tree):
        query = parse_query("Q(z) <- S(x), Child(x, y), NP(y), Following(y, z), NP(z)")
        assert evaluate_on_tree(query, sentence_tree) == frozenset({(6,)})

    def test_evaluate_binary(self, sentence_tree):
        query = parse_query("Q(x, y) <- NP(x), Child(x, y), NN(y)")
        assert evaluate_on_tree(query, sentence_tree) == frozenset({(1, 3), (6, 7)})

    def test_evaluate_boolean(self, sentence_structure):
        positive = parse_query("Q <- VB(x), Following(x, y), PP(y)")
        negative = parse_query("Q <- PP(x), Following(x, y)")
        assert evaluate(positive, sentence_structure) == frozenset({()})
        assert evaluate(negative, sentence_structure) == frozenset()

    def test_evaluate_repeated_head_variable(self, sentence_tree):
        query = parse_query("Q(x, x) <- NP(x)")
        assert evaluate_on_tree(query, sentence_tree) == frozenset({(1, 1), (6, 6)})

    def test_check_answer(self, sentence_structure):
        query = parse_query("Q(x) <- NP(x), Child(x, y), NN(y)")
        assert check_answer(query, sentence_structure, (1,))
        assert check_answer(query, sentence_structure, (6,))
        assert not check_answer(query, sentence_structure, (4,))
        with pytest.raises(ValueError):
            check_answer(query, sentence_structure, (1, 2))

    def test_evaluate_union(self, sentence_structure):
        union = as_union(parse_query("Q(x) <- DT(x)")).union(
            as_union(parse_query("Q(x) <- VB(x)"))
        )
        assert evaluate_union(union, sentence_structure) == frozenset({(2,), (5,)})

    def test_satisfying_assignment(self, sentence_structure):
        tractable = parse_query("Q <- Child+(x, y), NP(y)")
        assignment = satisfying_assignment(tractable, sentence_structure)
        assert assignment is not None
        cyclic = parse_query("Q <- Child(x, y), Child+(x, y)")
        assert satisfying_assignment(cyclic, sentence_structure) is not None
        impossible = parse_query("Q <- PP(x), Child(x, y)")
        assert satisfying_assignment(impossible, sentence_structure) is None

    def test_engines_agree_on_random_acyclic_and_cyclic_queries(self):
        for seed in range(5):
            tree = random_tree(18, alphabet=("A", "B"), seed=300 + seed, unlabeled_probability=0.2)
            structure = TreeStructure(tree)
            query = random_cyclic_query(
                (Axis.CHILD, Axis.CHILD_PLUS, Axis.FOLLOWING),
                num_variables=4,
                num_extra_atoms=1,
                seed=seed,
            )
            expected = bt_holds(query, structure)
            assert is_satisfied(query, structure) == expected
