"""Tests for the experiment modules (each regenerates a table/figure)."""

from __future__ import annotations


from repro.experiments import (
    figure8,
    figure9,
    polytime,
    rewriting_report,
    table1,
    table2,
    xproperty_figures,
)


class TestTable1Experiment:
    def test_classification_matches_paper(self):
        result = table1.classification_only()
        assert result.matches_paper
        assert len(result.cells) == 28
        text = result.render()
        assert "Matches the published table: True" in text

    def test_scaling_measurements(self):
        tractable = table1.tractable_scaling(sizes=(4, 8), tree_size=60)
        assert len(tractable) == 2
        assert all(point.seconds >= 0 for point in tractable)
        hard = table1.hard_scaling(clause_counts=(2, 3))
        assert len(hard) == 2
        # On satisfiable planted instances the absolute effort fluctuates with
        # the instance (finding one solution can be lucky); what must hold is
        # that real search happened and the cross-check with the exact
        # decision procedure (inside hard_scaling) passed.
        assert all(point.search_nodes > 0 for point in hard)
        assert all(point.seconds >= 0 for point in hard)

    def test_full_run_renders(self):
        result = table1.run(full=False)
        assert "Table I" in result.render()


class TestTable2Experiment:
    def test_run(self):
        result = table2.run()
        assert result.antisymmetric and result.monotone
        assert result.values[(1, 3)] == 18
        assert "NAND" in result.render()


class TestXPropertyExperiment:
    def test_run(self):
        result = xproperty_figures.run(num_trees=4, tree_size=10, seed=1)
        assert result.theorem41_positive_confirmed
        assert all(counterexample.confirms_failure for counterexample in result.counterexamples)
        text = result.render()
        assert "Theorem 4.1" in text
        assert "Figure 3" in text


class TestFigure8Experiment:
    def test_run(self):
        result = figure8.run(samples=4, tree_size=10)
        assert result.equivalent_on_samples
        assert result.apq.is_acyclic()
        assert len(result.trace) > 0
        rendered = result.render(include_trace=True)
        assert "apply-lifter" in rendered
        assert "Figure 8" in result.render(include_trace=False)


class TestFigure9Experiment:
    def test_run_small(self):
        result = figure9.run(max_n=2, pad=2, check_ps_up_to=2)
        assert result.diamonds_true_on_ps == {1: True, 2: True}
        assert result.example78_separates
        assert len(result.blowup) == 2
        assert result.blowup[1].apq_size > result.blowup[0].apq_size
        assert "blow-up" in result.render()


class TestPolytimeExperiment:
    def test_run_small(self):
        result = polytime.run(
            tree_sizes=(40, 80), query_sizes=(4, 8), ablation_sizes=(30,)
        )
        assert len(result.tree_scaling) == 2
        assert len(result.query_scaling) == 2
        assert len(result.ablation_worklist) == len(result.ablation_horn) == 1
        assert "Theorem 3.5" in result.render()


class TestRewritingReportExperiment:
    def test_quick_run(self):
        report = rewriting_report.run(quick=True)
        assert report.lifters_66_verified == 36
        assert report.lifters_66_failed == []
        # The four printed Theorem 6.9 formulas with missing cases, plus the
        # Following/Following one, fail verification (reproduction discrepancy).
        assert set(report.lifters_69_failed) >= {"Child", "NextSibling"}
        assert all(summary.all_equivalent for summary in report.signature_summaries)
        assert report.prop614_equivalent
        assert "Expressiveness" in report.render()
