"""Tests for Section 5: 1-in-3 3SAT, the Theorem 5.1 reduction, Table II, hard instances."""

from __future__ import annotations

import pytest

from repro.evaluation import backtracking
from repro.hardness import (
    NAND,
    OneInThreeInstance,
    brute_force_solutions,
    build_data_tree,
    build_query,
    count_solutions,
    decide_by_selection,
    decode_assignment,
    encode_selection,
    grid_query,
    hard_workload,
    is_satisfiable,
    nand,
    random_cyclic_query,
    random_instance,
    reduce_instance,
    render_table2,
    satisfiable_instance,
    solve_backtracking,
    theorem51_workload,
    unsatisfiable_instance,
)
from repro.queries.graph import is_acyclic
from repro.trees import Axis
from repro.xproperty import classify, Complexity


class TestOneInThreeSat:
    def test_instance_validation(self):
        with pytest.raises(ValueError):
            OneInThreeInstance.of(("a", "b"))
        with pytest.raises(ValueError):
            OneInThreeInstance.of(("a", "a", "b"))

    def test_is_solution(self):
        instance = OneInThreeInstance.of(("a", "b", "c"), ("a", "d", "e"))
        assert instance.is_solution({"a": True, "b": False, "c": False, "d": False, "e": False})
        assert not instance.is_solution({"a": True, "b": True, "c": False, "d": False, "e": False})
        assert not instance.is_solution({v: False for v in instance.variables()})

    def test_selection_to_assignment(self):
        instance = OneInThreeInstance.of(("a", "b", "c"), ("a", "d", "e"))
        assignment = instance.selection_to_assignment([1, 1])
        assert assignment["a"] and not assignment["b"]
        with pytest.raises(ValueError):
            instance.selection_to_assignment([1, 2])  # a true and d true -> two in clause 2
        with pytest.raises(ValueError):
            instance.selection_to_assignment([1])
        with pytest.raises(ValueError):
            instance.selection_to_assignment([0, 1])

    def test_brute_force_and_count(self):
        instance = OneInThreeInstance.of(("a", "b", "c"))
        solutions = list(brute_force_solutions(instance))
        assert len(solutions) == 3
        assert count_solutions(instance) == 3
        assert is_satisfiable(instance)

    def test_unsatisfiable_instance_is_unsatisfiable(self):
        assert not is_satisfiable(unsatisfiable_instance())

    def test_backtracking_solver_agrees_with_brute_force(self):
        for seed in range(8):
            instance = random_instance(5, 4, seed=seed)
            assert (solve_backtracking(instance) is not None) == is_satisfiable(instance)
        solution = solve_backtracking(satisfiable_instance(6, 5, seed=3))
        assert solution is not None

    def test_backtracking_solution_is_valid(self):
        instance = satisfiable_instance(7, 6, seed=11)
        solution = solve_backtracking(instance)
        assert solution is not None and instance.is_solution(solution)

    def test_planted_instances_are_satisfiable(self):
        for seed in range(5):
            assert is_satisfiable(satisfiable_instance(6, 5, seed=seed))

    def test_generators_validate_arguments(self):
        with pytest.raises(ValueError):
            random_instance(2, 1)
        with pytest.raises(ValueError):
            satisfiable_instance(2, 1)


class TestTable2:
    def test_values(self):
        assert nand(1, 1) == 10
        assert nand(3, 1) == 2
        assert nand(1, 3) == 18
        assert len(NAND) == 9
        with pytest.raises(ValueError):
            nand(0, 1)

    def test_render(self):
        text = render_table2()
        assert "10   13   18" in text

    def test_antisymmetry(self):
        for k in (1, 2, 3):
            for l in (1, 2, 3):
                assert nand(k, l) == nand(4 - l, 4 - k)


class TestTheorem51DataTree:
    def test_tree_shape_and_labels(self):
        tree, v_nodes, w_nodes = build_data_tree()
        assert len(tree) == 3 + 3 * 10
        v1, v2, v3 = v_nodes
        assert tree.labels(v1) == tree.labels(v2) == tree.labels(v3) == frozenset({"X"})
        assert tree.parent_of(v2) == v1 and tree.parent_of(v3) == v2
        # The three branches hang off v3.
        assert sorted(tree.children(v3)) == sorted(w_nodes[(m, 1)] for m in (1, 2, 3))
        # Y labels at w[m][m].
        for m in (1, 2, 3):
            assert "Y" in tree.labels(w_nodes[(m, m)])
        # Branch m contains label Lm only at position 5+m.
        for m in (1, 2, 3):
            lm_nodes = [
                t for t in range(1, 11) if f"L{m}" in tree.labels(w_nodes[(m, t)])
            ]
            assert lm_nodes == [5 + m]
        # Positions 4..10 carry the other two labels.
        for m in (1, 2, 3):
            for t in range(4, 11):
                others = {f"L{k}" for k in (1, 2, 3) if k != m}
                assert others <= tree.labels(w_nodes[(m, t)])

    def test_query_structure(self):
        instance = OneInThreeInstance.of(("a", "b", "c"), ("a", "d", "e"))
        query = build_query(instance, "tau4")
        assert query.is_boolean
        assert Axis.CHILD in query.signature()
        assert Axis.CHILD_PLUS in query.signature()
        assert not is_acyclic(query)  # the coincidence variables create cycles
        query5 = build_query(instance, "tau5")
        assert Axis.CHILD_STAR in query5.signature()
        with pytest.raises(ValueError):
            build_query(instance, "tau6")  # type: ignore[arg-type]

    def test_signatures_are_np_hard_side(self):
        instance = OneInThreeInstance.of(("a", "b", "c"), ("a", "d", "e"))
        for variant in ("tau4", "tau5"):
            reduction = reduce_instance(instance, variant)  # type: ignore[arg-type]
            assert classify(reduction.query.signature()) is Complexity.NP_COMPLETE


class TestTheorem51Correctness:
    def test_satisfiable_instance_gives_satisfiable_query(self):
        instance = OneInThreeInstance.of(("a", "b", "c"), ("a", "d", "e"))
        reduction = reduce_instance(instance, "tau4")
        solution = backtracking.find_solution(reduction.query, reduction.structure())
        assert solution is not None
        assignment = decode_assignment(reduction, solution)
        assert instance.is_solution(assignment)

    def test_three_clause_instance_tau4_and_tau5(self):
        instance = OneInThreeInstance.of(("a", "b", "c"), ("b", "c", "d"), ("a", "c", "d"))
        assert is_satisfiable(instance)
        for variant in ("tau4", "tau5"):
            reduction = reduce_instance(instance, variant)  # type: ignore[arg-type]
            selection = decide_by_selection(reduction)
            assert selection is not None
            assignment = instance.selection_to_assignment(selection)
            assert instance.is_solution(assignment)

    def test_unsatisfiable_instance_gives_unsatisfiable_query(self):
        reduction = reduce_instance(unsatisfiable_instance(), "tau4")
        assert decide_by_selection(reduction) is None

    def test_forward_direction_every_sat_solution_extends(self):
        instance = OneInThreeInstance.of(("a", "b", "c"), ("a", "d", "e"))
        reduction = reduce_instance(instance, "tau4")
        structure = reduction.structure()
        found_any = False
        for solution in brute_force_solutions(instance):
            selection = [
                next(k for k, literal in enumerate(clause, start=1) if solution[literal])
                for clause in instance.clauses
            ]
            pinned = encode_selection(reduction, selection)
            assert backtracking.boolean_query_holds(reduction.query, structure, pinned=pinned)
            found_any = True
        assert found_any

    def test_inconsistent_selection_is_rejected(self):
        """Selecting a shared literal in one clause but not the other fails."""
        instance = OneInThreeInstance.of(("a", "b", "c"), ("a", "d", "e"))
        reduction = reduce_instance(instance, "tau4")
        structure = reduction.structure()
        pinned = {"x1": reduction.v_nodes[0], "x2": reduction.v_nodes[1]}
        assert not backtracking.boolean_query_holds(reduction.query, structure, pinned=pinned)

    def test_selection_decision_agrees_with_sat_on_random_instances(self):
        for seed in range(4):
            instance = random_instance(4, 3, seed=seed)
            reduction = reduce_instance(instance, "tau4")
            assert (decide_by_selection(reduction) is not None) == is_satisfiable(instance)

    def test_encode_selection_validation(self):
        instance = OneInThreeInstance.of(("a", "b", "c"), ("a", "d", "e"))
        reduction = reduce_instance(instance, "tau4")
        with pytest.raises(ValueError):
            encode_selection(reduction, [1])


class TestHardInstanceGenerators:
    def test_random_cyclic_query_is_cyclic(self):
        query = random_cyclic_query((Axis.CHILD, Axis.CHILD_PLUS), 5, 2, seed=1)
        assert not is_acyclic(query)
        assert query.signature().axes <= {Axis.CHILD, Axis.CHILD_PLUS}
        with pytest.raises(ValueError):
            random_cyclic_query((Axis.CHILD,), 2, 0)

    def test_grid_query_shape(self):
        query = grid_query(Axis.CHILD_PLUS, Axis.NEXT_SIBLING_PLUS, 3, 3)
        assert not is_acyclic(query)
        assert len(query.variables()) == 9
        # 2 * rows * (columns - 1) edges in a 3x3 grid.
        assert len(query.axis_atoms()) == 12

    def test_hard_workload_bundle(self):
        workload = hard_workload((Axis.CHILD, Axis.FOLLOWING), tree_size=30, num_queries=3, seed=2)
        assert len(workload.queries) == 3
        assert workload.structure.domain_size == 30
        assert "Following" in workload.description

    def test_theorem51_workload(self):
        reduction = theorem51_workload(3, seed=1)
        assert reduction.instance.num_clauses == 3
        assert decide_by_selection(reduction) is not None
