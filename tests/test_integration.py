"""End-to-end integration tests across the whole stack.

Each test exercises several subsystems together, the way a downstream user
would: parse or build data, pose queries (textual / XPath / builder), evaluate
with the planner, rewrite, and cross-check the different routes against each
other.
"""

from __future__ import annotations


import repro
from repro import (
    evaluate_on_tree,
    from_xml,
    parse_query,
    to_apq,
    xpath_to_cq,
)
from repro.evaluation import Engine, evaluate, evaluate_union, is_satisfied
from repro.hardness import OneInThreeInstance, is_satisfiable, reduce_instance, decide_by_selection
from repro.queries import cq_to_xpath, equivalent_on_samples
from repro.rewriting import rewrite_child_nextsibling_apq
from repro.trees import TreeStructure, random_tree
from repro.trees.axes import Axis
from repro.workloads import (
    auction_document,
    busy_auction_query,
    figure1_query,
    parse_dominance_constraints,
    random_corpus,
    solved_forms,
)
from repro.xproperty import Complexity, classify


class TestPublicApiSurface:
    def test_version_and_reexports(self):
        assert repro.__version__
        assert repro.Axis.CHILD.value == "Child"
        assert callable(repro.evaluate_on_tree)

    def test_quickstart_snippet(self):
        tree = repro.from_nested(
            ("S", [("NP", []), ("VP", [("V", []), ("NP", [])])])
        )
        query = repro.parse_query(
            "Q(z) <- S(x), Child(x, y), NP(y), Following(y, z), NP(z)"
        )
        assert repro.evaluate_on_tree(query, tree) == frozenset({(4,)})


class TestXmlPipeline:
    def test_xml_to_answers(self):
        document_tree = from_xml(
            "<site><regions><europe><item><payment/></item><item/></europe>"
            "</regions></site>"
        )
        query = xpath_to_cq("//item[payment]")
        answers = evaluate_on_tree(query, document_tree)
        assert len(answers) == 1
        textual = parse_query("Q(i) <- item(i), Child(i, p), payment(p)")
        assert evaluate_on_tree(textual, document_tree) == answers

    def test_cyclic_xml_query_vs_rewriting(self):
        document = auction_document(num_bids=15, seed=3)
        query = busy_auction_query()
        direct = evaluate_on_tree(query, document)
        apq = to_apq(query)
        via_apq = evaluate_union(apq, TreeStructure(document))
        assert direct == via_apq


class TestLinguisticsPipeline:
    def test_figure1_query_three_routes(self):
        corpus = random_corpus(6, seed=12)
        query = figure1_query()
        structure = TreeStructure(corpus)
        planner_answers = evaluate(query, structure)
        backtracking_answers = evaluate(query, structure, engine=Engine.BACKTRACKING)
        assert planner_answers == backtracking_answers
        apq = to_apq(query)
        assert evaluate_union(apq, structure) == planner_answers
        # The APQ route also corresponds to an XPath union (Remark 6.1) as
        # long as the disjuncts stay within the XPath axes.
        for disjunct in apq:
            if disjunct.signature().axes <= {
                Axis.CHILD,
                Axis.CHILD_PLUS,
                Axis.CHILD_STAR,
                Axis.NEXT_SIBLING_PLUS,
                Axis.FOLLOWING,
            }:
                expression = cq_to_xpath(disjunct)
                back = xpath_to_cq(expression)
                assert (
                    equivalent_on_samples(disjunct, back, samples=4, size=12, seed=5)
                    is None
                )


class TestDominancePipeline:
    def test_constraints_to_solved_forms_to_answers(self, sentence_tree):
        constraints = parse_dominance_constraints(
            """
            s : S
            s <+ left
            s <+ right
            left : NP
            right : NP
            left << right
            """
        )
        forms = solved_forms(constraints)
        assert not forms.is_empty()
        assert forms.is_acyclic()
        structure = TreeStructure(sentence_tree)
        assert bool(evaluate_union(forms, structure)) == is_satisfied(constraints, structure)


class TestDichotomyPipeline:
    def test_classifier_guides_engine_and_results_agree(self):
        tree = random_tree(30, alphabet=("A", "B"), seed=21, unlabeled_probability=0.1)
        structure = TreeStructure(tree)
        tractable = parse_query("Q <- A(x), Child+(x, y), B(y), Child*(y, z), A(z), Child+(x, z)")
        hard_shape = parse_query("Q <- A(x), Child(x, y), B(y), Child+(x, z), A(z), Child(y, z)")
        assert classify(tractable.signature()) is Complexity.PTIME
        assert classify(hard_shape.signature()) is Complexity.NP_COMPLETE
        for query in (tractable, hard_shape):
            assert is_satisfied(query, structure) == is_satisfied(
                query, structure, engine=Engine.BACKTRACKING
            )

    def test_theorem51_reduction_end_to_end(self):
        instance = OneInThreeInstance.of(("a", "b", "c"), ("b", "c", "d"))
        reduction = reduce_instance(instance, "tau4")
        assert (decide_by_selection(reduction) is not None) == is_satisfiable(instance)


class TestChildNextSiblingPipeline:
    def test_linear_rewriting_matches_general_rewriting(self):
        query = parse_query(
            "Q <- A(p), Child(p, a), Child(p, b), NextSibling(a, b), B(b)"
        )
        linear = rewrite_child_nextsibling_apq(query)
        general = to_apq(query)
        tree = random_tree(25, alphabet=("A", "B"), seed=5, unlabeled_probability=0.2)
        structure = TreeStructure(tree)
        assert evaluate_union(linear, structure) == evaluate_union(general, structure)
