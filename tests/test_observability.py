"""Tests for the observability layer: metrics, tracing, explain, ``/metrics``.

Covers the mergeable-histogram contract (merging shard snapshots must equal
observing the union of their samples), thread safety of concurrent observes,
Prometheus text well-formedness, the request span tree, plan explanation on
both resident and accel-only documents, error-path engine attribution across
backends, per-shard load surfacing, and the ``/metrics`` route on both HTTP
front ends.
"""

from __future__ import annotations

import bisect
import json
import math
import re
import threading
import urllib.error
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.sqlite import SQLiteBackend, explain_sql
from repro.observability import tracing
from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    SlowQueryLog,
    percentile_from_buckets,
)
from repro.queries import parse_query
from repro.service import (
    AsyncServerThread,
    BatchExecutor,
    DocumentStore,
    QueryCache,
    Request,
    ShardedExecutor,
    make_server,
)
from repro.service.core import run_request
from repro.service.http_metrics import METRICS_CONTENT_TYPE
from repro.trees.builders import parse_sexpr

SEXPR = "(a (b) (c (b (d))))"
CYCLIC = "Q(x) <- b(x), Child+(x, y), Child+(y, z), Child+(x, z)"


# ---------------------------------------------------------------------------
# Histogram merge = union observe (the cross-process contract).
# ---------------------------------------------------------------------------


class TestHistogramMerge:
    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=30.0, allow_nan=False), max_size=120
        ),
        shard_count=st.integers(min_value=1, max_value=5),
    )
    def test_merging_shard_snapshots_equals_observing_union(self, values, shard_count):
        shards = [MetricsRegistry() for _ in range(shard_count)]
        for index, value in enumerate(values):
            shards[index % shard_count].histogram("h_seconds", "h").observe(value)

        merged = MetricsRegistry()
        for shard in shards:
            merged.merge_snapshot(shard.snapshot())
        union = MetricsRegistry()
        union_histogram = union.histogram("h_seconds", "h")
        for value in values:
            union_histogram.observe(value)

        merged_histogram = merged.histogram("h_seconds", "h")
        assert merged_histogram.bucket_counts() == union_histogram.bucket_counts()
        merged_count, merged_sum = merged_histogram.totals()
        union_count, union_sum = union_histogram.totals()
        assert merged_count == union_count == len(values)
        assert merged_sum == pytest.approx(union_sum)
        # The exposition itself must agree too (cumulation happens at render);
        # only the `_sum` sample may differ in its last ulp, since float
        # addition order differs between the sharded and the union runs.
        def _without_sums(registry: MetricsRegistry) -> list:
            return [
                line
                for line in registry.render().splitlines()
                if not line.startswith("h_seconds_sum")
            ]

        assert _without_sums(merged) == _without_sums(union)

    def test_labelled_series_merge_independently(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.histogram("h", "h", ("engine",)).observe(0.002, engine="sql")
        left.histogram("h", "h", ("engine",)).observe(0.2, engine="sql")
        right.histogram("h", "h", ("engine",)).observe(0.002, engine="acyclic")
        merged = MetricsRegistry()
        merged.merge_snapshot(left.snapshot())
        merged.merge_snapshot(right.snapshot())
        histogram = merged.histogram("h", "h", ("engine",))
        assert histogram.totals(engine="sql") == (2, pytest.approx(0.202))
        assert histogram.totals(engine="acyclic") == (1, pytest.approx(0.002))

    def test_counters_and_gauges_sum_on_merge(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("c_total", "c").inc(3)
        right.counter("c_total", "c").inc(4)
        left.gauge("g", "g").set(5)
        right.gauge("g", "g").set(7)
        merged = MetricsRegistry()
        merged.merge_snapshot(left.snapshot())
        merged.merge_snapshot(right.snapshot())
        assert merged.counter("c_total", "c").value() == 7
        # Gauges sum: per-shard levels aggregate to the fleet level.
        assert merged.gauge("g", "g").value() == 12

    def test_mismatched_bucket_shapes_are_an_error(self):
        left = MetricsRegistry()
        left.histogram("h", "h", buckets=(1.0, 2.0)).observe(1.5)
        merged = MetricsRegistry()
        merged.histogram("h", "h", buckets=(1.0, 2.0, 3.0)).observe(0.5)
        with pytest.raises(ValueError):
            merged.merge_snapshot(left.snapshot())


class TestConcurrentObserve:
    def test_concurrent_observes_lose_nothing(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_seconds", "h", ("worker",))
        counter = registry.counter("c_total", "c")
        threads, per_thread = 8, 2000

        def hammer(worker: int) -> None:
            for index in range(per_thread):
                histogram.observe(
                    DEFAULT_LATENCY_BUCKETS[index % len(DEFAULT_LATENCY_BUCKETS)],
                    worker=str(worker % 2),
                )
                counter.inc()

        pool = [threading.Thread(target=hammer, args=(n,)) for n in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        total = sum(
            histogram.totals(worker=worker)[0] for worker in ("0", "1")
        )
        assert total == threads * per_thread
        assert counter.value() == threads * per_thread


# ---------------------------------------------------------------------------
# Interpolated percentiles from fixed-bucket counts.
# ---------------------------------------------------------------------------


class TestPercentileFromBuckets:
    def test_interpolates_within_the_holding_bucket(self):
        # Four observations, all in the (1, 2] bucket: the median interpolates
        # to the bucket's midpoint, Prometheus histogram_quantile style.
        bounds = (1.0, 2.0, 4.0)
        counts = [0, 4, 0, 0]
        assert percentile_from_buckets(bounds, counts, 0.5) == pytest.approx(1.5)
        assert percentile_from_buckets(bounds, counts, 1.0) == pytest.approx(2.0)

    def test_overflow_mass_clamps_to_the_last_finite_bound(self):
        assert percentile_from_buckets((1.0, 2.0), [0, 1, 3], 0.9) == pytest.approx(2.0)

    def test_empty_histogram_has_no_percentile(self):
        assert percentile_from_buckets((1.0, 2.0), [0, 0, 0], 0.5) is None
        registry = MetricsRegistry()
        assert registry.histogram("h", "h").percentile(0.5) is None

    @settings(max_examples=120, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
            min_size=1,
            max_size=80,
        ),
        q=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_estimate_lands_in_the_bucket_of_the_true_quantile(self, values, q):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_seconds", "h")
        for value in values:
            histogram.observe(value)
        estimate = histogram.percentile(q)
        assert estimate is not None

        bounds = histogram.buckets
        # The true (nearest-rank) empirical quantile and the bucket it fell in
        # at observe() time; "exact to within one bucket" means the estimate
        # may not leave that bucket.
        rank = max(1, math.ceil(q * len(values)))
        true_value = sorted(values)[rank - 1]
        slot = bisect.bisect_left(bounds, true_value)
        if slot >= len(bounds):
            assert estimate == pytest.approx(bounds[-1])
        else:
            lower = bounds[slot - 1] if slot > 0 else 0.0
            assert lower - 1e-12 <= estimate <= bounds[slot] + 1e-12

    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
            min_size=1,
            max_size=60,
        ),
        qs=st.tuples(
            st.floats(min_value=0.0, max_value=1.0), st.floats(min_value=0.0, max_value=1.0)
        ),
    )
    def test_estimates_are_monotone_in_q(self, values, qs):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_seconds", "h")
        for value in values:
            histogram.observe(value)
        low, high = sorted(qs)
        assert histogram.percentile(low) <= histogram.percentile(high) + 1e-12


# ---------------------------------------------------------------------------
# Prometheus text exposition well-formedness.
# ---------------------------------------------------------------------------

# Label values may contain any character except an unescaped quote (curly
# braces included -- route templates like "/documents/{id}" are legal), so the
# label block is matched up to the closing "}" that precedes the value.
_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? -?[0-9]+(\.[0-9]+([eE][+-]?[0-9]+)?)?$|"
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? \+Inf$"
)


def _assert_well_formed_exposition(text: str) -> None:
    assert text.endswith("\n")
    seen_types: dict[str, str] = {}
    for line in text.splitlines():
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert kind in ("counter", "gauge", "histogram")
            assert name not in seen_types, f"duplicate TYPE for {name}"
            seen_types[name] = kind
            continue
        assert _SAMPLE_LINE.match(line), f"malformed sample line: {line!r}"
        family = line.split("{", 1)[0].split(" ", 1)[0]
        base = re.sub(r"_(bucket|sum|count)$", "", family)
        assert family in seen_types or base in seen_types, f"sample before TYPE: {line!r}"


class TestPrometheusExposition:
    def test_render_is_well_formed_and_cumulative(self):
        registry = MetricsRegistry()
        registry.counter("r_total", "requests", ("status",)).inc(status='we"ird\n')
        registry.gauge("g", "level").set(2.5)
        histogram = registry.histogram("h_seconds", "latency", ("route",))
        for value in (0.0002, 0.003, 0.003, 7.0, 99.0):
            histogram.observe(value, route="/query")
        text = registry.render()
        _assert_well_formed_exposition(text)
        # Label values escape quotes and newlines.
        assert 'status="we\\"ird\\n"' in text
        # Bucket samples are cumulative and end at the +Inf slot == _count.
        bucket_values = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("h_seconds_bucket")
        ]
        assert bucket_values == sorted(bucket_values)
        assert 'le="+Inf"} 5' in text
        assert 'h_seconds_count{route="/query"} 5' in text


# ---------------------------------------------------------------------------
# Slow-query ring buffer.
# ---------------------------------------------------------------------------


class TestSlowQueryLog:
    def test_threshold_capacity_and_stats(self):
        log = SlowQueryLog(capacity=3, threshold_ms=10.0)
        assert not log.maybe_record(9.9, doc="fast")
        for index in range(5):
            assert log.maybe_record(10.0 + index, doc=f"d{index}")
        entries = log.entries()
        assert [entry["doc"] for entry in entries] == ["d2", "d3", "d4"]
        stats = log.stats()
        assert stats["capacity"] == 3
        assert stats["recorded"] == 5
        assert stats["threshold_ms"] == 10.0
        log.clear()
        assert log.stats()["recorded"] == 0


# ---------------------------------------------------------------------------
# Tracing spans.
# ---------------------------------------------------------------------------


def _span_names(node: dict) -> set:
    names = {node["name"]}
    for child in node.get("children", ()):
        names |= _span_names(child)
    return names


class TestTracing:
    def test_span_without_active_trace_is_a_noop(self):
        assert not tracing.is_active()
        with tracing.span("orphan") as span:
            assert span is None

    def test_trace_records_nested_spans_and_attributes(self):
        with tracing.trace("root", doc="d") as root:
            with tracing.span("child", k=1):
                tracing.annotate(extra="x")
                with tracing.span("grandchild"):
                    pass
        payload = root.to_json_dict()
        assert payload["name"] == "root"
        assert payload["attributes"] == {"doc": "d"}
        assert payload["elapsed_ms"] >= 0
        (child,) = payload["children"]
        assert child["attributes"] == {"k": 1, "extra": "x"}
        assert [grandchild["name"] for grandchild in child["children"]] == ["grandchild"]
        assert not tracing.is_active()

    def test_suppress_hides_inner_spans(self):
        with tracing.trace("root") as root:
            with tracing.suppress():
                with tracing.span("hidden"):
                    pass
            with tracing.span("visible"):
                pass
        assert _span_names(root.to_json_dict()) == {"root", "visible"}


# ---------------------------------------------------------------------------
# Request-level observability: debug traces, explain, error attribution.
# ---------------------------------------------------------------------------


@pytest.fixture
def executor():
    store = DocumentStore()
    store.register_sexpr("doc", SEXPR)
    backend = BatchExecutor(store, QueryCache())
    yield backend
    backend.close()


class TestRequestTracing:
    def test_debug_attaches_span_tree_covering_the_pipeline(self, executor):
        request = Request(doc="doc", query="Q(x) <- b(x), Child(y, x)", debug=True)
        result = executor.execute(request)
        assert result.ok
        names = _span_names(result.trace)
        # Cold query: parse -> canonicalize -> compile -> evaluate ->
        # propagate -> enumerate, all under the request root.
        assert {
            "request",
            "parse",
            "canonicalize",
            "compile",
            "evaluate",
            "propagate",
            "enumerate",
        } <= names
        propagate = _find_span(result.trace, "propagate")
        assert "domains_before" in propagate["attributes"]
        assert "domains_after" in propagate["attributes"]

    def test_debug_trace_crosses_the_shard_boundary(self):
        sharded = ShardedExecutor(shards=2)
        try:
            sharded.register_payload({"doc": "doc", "sexpr": SEXPR})
            result = sharded.execute(Request(doc="doc", query="Q(x) <- b(x)", debug=True))
            assert result.ok and result.trace is not None
            assert "evaluate" in _span_names(result.trace)
            payload = result.to_json_dict()
            assert payload["trace"]["name"] == "request"
        finally:
            sharded.close()

    def test_no_debug_no_trace(self, executor):
        result = executor.execute(Request(doc="doc", query="Q(x) <- b(x)"))
        assert result.ok and result.trace is None
        assert "trace" not in result.to_json_dict()


def _find_span(node: dict, name: str) -> dict:
    if node["name"] == name:
        return node
    for child in node.get("children", ()):
        found = _find_span(child, name)
        if found is not None:
            return found
    return None


class TestExplain:
    def test_explain_resident_reports_plan_without_executing(self, executor):
        result = executor.execute(Request(doc="doc", query=CYCLIC, explain=True))
        assert result.ok
        plan = result.explain
        assert plan["residency"] == "resident"
        assert plan["width"] >= 1 and isinstance(plan["width_exact"], bool)
        assert plan["bags"] and len(plan["bag_parents"]) == len(plan["bags"])
        assert plan["engine"] == result.engine
        payload = result.to_json_dict()
        # Explain responses describe the plan; they carry no answers.
        assert "answers" not in payload and "count" not in payload
        assert payload["explain"] == plan

    def test_explain_sql_includes_generated_text(self, executor):
        result = executor.execute(
            Request(doc="doc", query="Q(x) <- b(x)", engine="sql", explain=True)
        )
        assert result.ok
        assert result.explain["engine"] == "sql"
        sql = result.explain["sql"]
        assert sql.lstrip().upper().startswith(("WITH", "SELECT"))
        assert "bag_0" in sql

    def test_explain_accel_only_routes_to_sql(self):
        store = DocumentStore(accel_backend=SQLiteBackend())
        store.register_tree_accel_only("big", parse_sexpr(SEXPR))
        result = run_request(store, QueryCache(), Request(doc="big", query=CYCLIC, explain=True))
        assert result.ok
        assert result.explain["residency"] == "accel"
        assert result.explain["engine"] == "sql"
        assert "SELECT" in result.explain["sql"].upper()

    def test_explain_never_touches_backend_data(self):
        # The module-level helper lowers against an empty scratch database, so
        # SQL text generation cannot depend on (or mutate) document contents.
        query = parse_query("Q(x) <- b(x), Child+(x, y), c(y)")
        sql = explain_sql(query)
        assert "WITH" in sql.upper() and "?" in sql

    def test_explain_errors_keep_the_error_contract(self, executor):
        result = executor.execute(Request(doc="ghost", query=CYCLIC, explain=True))
        assert not result.ok
        assert "unknown document" in result.error


def _strip_volatile(payload: dict) -> dict:
    return {key: value for key, value in payload.items() if key != "elapsed_ms"}


class TestErrorAttribution:
    def test_error_payloads_are_identical_across_backends(self):
        requests = [
            Request(doc="ghost", query="Q(x) <- b(x)"),  # unknown document
            Request(doc="doc", query="Q(x <- nope"),  # parse error
            Request(doc="doc", query="Q(x) <- b(x)", engine="bogus"),  # bad engine
        ]
        threaded = BatchExecutor()
        sharded = ShardedExecutor(shards=2)
        try:
            for backend in (threaded, sharded):
                backend.register_payload({"doc": "doc", "sexpr": SEXPR})
            for request in requests:
                left = threaded.execute(request).to_json_dict()
                right = sharded.execute(request).to_json_dict()
                assert _strip_volatile(left) == _strip_volatile(right)
                assert "engine" in left  # attribution survives the error path
        finally:
            threaded.close()
            sharded.close()

    def test_forced_engine_attribution_survives_routing_errors(self):
        # An accel-only document with a forced non-SQL engine is a routing
        # error; the failure must still be attributed to the engine the
        # request forced.
        store = DocumentStore(accel_backend=SQLiteBackend())
        store.register_tree_accel_only("big", parse_sexpr(SEXPR))
        result = run_request(
            store, QueryCache(), Request(doc="big", query="Q(x) <- b(x)", engine="xproperty")
        )
        assert not result.ok
        assert "accel-only" in result.error
        assert result.engine == "xproperty"
        assert result.to_json_dict()["engine"] == "xproperty"


# ---------------------------------------------------------------------------
# Executor statistics: shard load and slow queries.
# ---------------------------------------------------------------------------


class TestShardLoad:
    def test_stats_surface_per_shard_queue_depth_and_in_flight(self):
        sharded = ShardedExecutor(shards=2)
        try:
            sharded.register_payload({"doc": "doc", "sexpr": SEXPR})
            sharded.execute(Request(doc="doc", query="Q(x) <- b(x)"))
            stats = sharded.stats()
            load = stats["executor"]["shard_load"]
            assert [entry["shard"] for entry in load] == [0, 1]
            for entry in load:
                assert entry["alive"] is True
                assert entry["in_flight"] == 0
                assert entry["queue_depth"] is None or entry["queue_depth"] >= 0
            assert "slow_queries" in stats
            assert set(stats["slow_queries"]) >= {"capacity", "threshold_ms", "entries"}
        finally:
            sharded.close()

    def test_threaded_stats_surface_slow_queries_too(self, executor):
        stats = executor.stats()
        assert set(stats["slow_queries"]) >= {"capacity", "threshold_ms", "entries"}


# ---------------------------------------------------------------------------
# /metrics on both HTTP front ends.
# ---------------------------------------------------------------------------


def _scrape(base: str, path: str = "/metrics"):
    with urllib.request.urlopen(base + path, timeout=30) as response:
        return response.status, response.getheader("Content-Type"), response.read().decode()


def _post(base: str, path: str, payload: dict):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


def _counter_value(text: str, series: str) -> float:
    for line in text.splitlines():
        if line.startswith(series + " "):
            return float(line.rsplit(" ", 1)[1])
    return 0.0


class TestMetricsEndpoint:
    def test_threaded_front_end_serves_prometheus_text(self):
        httpd = make_server(BatchExecutor(), host="127.0.0.1", port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        host, port = httpd.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            before = _counter_value(
                _scrape(base)[2], 'cqtrees_requests_total{status="ok"}'
            )
            _post(base, "/documents", {"doc": "doc", "sexpr": SEXPR})
            status, payload = _post(base, "/query", {"doc": "doc", "query": "Q(x) <- b(x)"})
            assert status == 200 and payload["count"] == 2
            status, content_type, text = _scrape(base)
            assert status == 200
            assert content_type == METRICS_CONTENT_TYPE
            _assert_well_formed_exposition(text)
            after = _counter_value(text, 'cqtrees_requests_total{status="ok"}')
            assert after == before + 1
            assert 'cqtrees_http_requests_total{route="/query",method="POST",code="200"}' in text
            assert "cqtrees_request_seconds_bucket" in text
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=5)

    def test_async_sharded_front_end_merges_worker_histograms(self):
        backend = ShardedExecutor(shards=2)
        try:
            with AsyncServerThread(backend) as server:
                host, port = server.address
                base = f"http://{host}:{port}"
                before = _counter_value(
                    _scrape(base)[2], 'cqtrees_requests_total{status="ok"}'
                )
                _post(base, "/documents", {"doc": "d1", "sexpr": SEXPR})
                _post(base, "/documents", {"doc": "d2", "sexpr": SEXPR})
                for doc in ("d1", "d2"):
                    status, payload = _post(base, "/query", {"doc": doc, "query": "Q(x) <- b(x)"})
                    assert status == 200 and payload["count"] == 2
                status, content_type, text = _scrape(base)
                assert status == 200 and content_type == METRICS_CONTENT_TYPE
                _assert_well_formed_exposition(text)
                # Worker-side evaluation counters reach the parent's scrape:
                # the workers were reset at fork, so the delta is exactly the
                # two queries above.
                after = _counter_value(text, 'cqtrees_requests_total{status="ok"}')
                assert after == before + 2
                # Front-end HTTP metrics (parent process) are in the same scrape.
                http_series = 'cqtrees_http_requests_total{route="/query",method="POST",code="200"}'
                assert http_series in text
        finally:
            backend.close()


class TestStatsLatencySummary:
    def test_stats_expose_per_route_percentiles_on_both_front_ends(self):
        def check(base: str) -> None:
            _post(base, "/documents", {"doc": "doc", "sexpr": SEXPR})
            status, payload = _post(base, "/query", {"doc": "doc", "query": "Q(x) <- b(x)"})
            assert status == 200
            with urllib.request.urlopen(base + "/stats", timeout=30) as response:
                stats = json.loads(response.read().decode("utf-8"))
            assert "plan_accounting" in stats
            summary = stats["http"]
            assert "/query" in summary
            entry = summary["/query"]
            assert entry["count"] >= 1
            assert 0.0 <= entry["p50_ms"] <= entry["p99_ms"]

        httpd = make_server(BatchExecutor(), host="127.0.0.1", port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        host, port = httpd.server_address[:2]
        try:
            check(f"http://{host}:{port}")
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=5)

        backend = ShardedExecutor(shards=2)
        try:
            with AsyncServerThread(backend) as server:
                host, port = server.address
                check(f"http://{host}:{port}")
        finally:
            backend.close()


# ---------------------------------------------------------------------------
# CLI explain verb.
# ---------------------------------------------------------------------------


class TestCliExplain:
    def test_explain_prints_the_plan_as_json(self, capsys):
        from repro.cli import main

        rc = main(["explain", "--sexpr", SEXPR, "--query", CYCLIC])
        captured = capsys.readouterr()
        assert rc == 0
        payload = json.loads(captured.out)
        assert payload["explain"]["width"] >= 1
        assert payload["explain"]["bags"]
        assert "answers" not in payload

    def test_explain_forced_sql_prints_generated_sql(self, capsys):
        from repro.cli import main

        rc = main(["explain", "--sexpr", SEXPR, "--query", "Q(x) <- b(x)", "--engine", "sql"])
        captured = capsys.readouterr()
        assert rc == 0
        payload = json.loads(captured.out)
        assert payload["explain"]["engine"] == "sql"
        assert "SELECT" in payload["explain"]["sql"].upper()
