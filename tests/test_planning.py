"""The cost-model planning subsystem (``repro.planning``).

Covers the :class:`QueryPlan` contract end to end:

* document statistics: exact at registration, approximate for accel-only
  documents, stable stats buckets;
* the estimators: domains bounded by label histograms, bag rows >= 1,
  the propagator rule;
* ``plan_query`` routing: ``"static"`` reproduces the pre-planner rule bit
  for bit, ``"cost"`` only arbitrates the cyclic residue, overrides always
  win, the materialization threshold;
* the serving layer: plans cached per (canonical query, stats bucket),
  invalidated by re-registration through the bucket key, EXPLAIN reporting
  the lowering that actually runs (the satellite bugfix);
* the property suite: answers byte-identical under ``routing="cost"`` vs
  ``routing="static"`` across cyclic and acyclic shapes, every engine
  override and every propagator; plan choice invariant under
  alpha-renaming.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.decomposition.decompose import prune_subset_bags
from repro.evaluation import Engine
from repro.evaluation.propagation import DEFAULT_PROPAGATOR, Propagator
from repro.planning import (
    MATERIALIZE_ROWS_THRESHOLD,
    DocumentStats,
    QueryPlan,
    bag_rows_estimate,
    choose_propagator,
    plan_query,
    validate_routing,
    variable_domain_estimate,
)
from repro.evaluation.compile import compile_query
from repro.evaluation.planner import choose_engine
from repro.queries import ConjunctiveQuery, parse_query
from repro.queries.atoms import AxisAtom, LabelAtom
from repro.service.cache import QueryCache
from repro.service.core import Request, run_request
from repro.service.store import DocumentNotFound, DocumentStore
from repro.trees import Axis, Tree, random_tree

ALPHABET = ("A", "B", "C")

FOUR_CYCLE = (
    "Q(a) <- A(a), Child+(a, b), B(b), Following(b, c), C(c), "
    "Child+(d, c), A(d), Following(a, d)"
)
ACYCLIC_CHAIN = "Q(a) <- A(a), Child+(a, b), B(b), Following(b, c), C(c)"
TRIANGLE = "Q(a) <- A(a), Child+(a, b), B(b), Following(a, c), Following(b, c), C(c)"


def _tree(size: int = 60, seed: int = 7) -> Tree:
    return random_tree(size, alphabet=ALPHABET, max_children=3, seed=seed)


# -- document statistics -------------------------------------------------------


def test_of_tree_counts_labels_exactly():
    tree = _tree(40, seed=3)
    stats = DocumentStats.of_tree(tree)
    assert stats.nodes == len(tree)
    assert not stats.approximate
    for label in tree.alphabet():
        assert stats.label_count(label) == len(tree.nodes_with_label(label))
    assert stats.label_count("unseen-label") == 0


def test_approximate_stats_are_flagged_and_conservative():
    stats = DocumentStats.approximate_from_nodes(50_000)
    assert stats.approximate
    assert stats.nodes == 50_000
    # Unknown labels must not pretend to be empty: the estimators fall back
    # to the full domain instead of pruning to zero.
    assert stats.label_count("A") is None
    assert stats.bucket().startswith("~")


def test_bucket_stable_and_content_sensitive():
    tree = _tree(60, seed=7)
    assert DocumentStats.of_tree(tree).bucket() == DocumentStats.of_tree(tree).bucket()
    other = random_tree(900, alphabet=ALPHABET, max_children=3, seed=8)
    assert DocumentStats.of_tree(tree).bucket() != DocumentStats.of_tree(other).bucket()


# -- estimators ----------------------------------------------------------------


def test_domain_estimate_uses_most_selective_label():
    tree = _tree(60, seed=7)
    stats = DocumentStats.of_tree(tree)
    query = parse_query("Q(x) <- A(x), Child(x, y)")
    compiled = compile_query(query)
    assert variable_domain_estimate("x", compiled, stats) == float(
        len(tree.nodes_with_label("A"))
    )
    assert variable_domain_estimate("y", compiled, stats) == float(len(tree))


def test_bag_rows_at_least_one_and_label_sensitive():
    tree = _tree(60, seed=7)
    stats = DocumentStats.of_tree(tree)
    compiled = compile_query(parse_query(FOUR_CYCLE))
    for bag in compiled.decomposition.bags:
        assert bag_rows_estimate(bag, compiled, stats) >= 1.0
    # An unlabeled clique over Following must estimate more rows than the
    # label-filtered cycle over the same variable count.
    loose = compile_query(
        parse_query("Q(a) <- Following(a, b), Following(b, c), Following(a, c)")
    )
    tight = compile_query(
        parse_query("Q(a) <- A(a), Child(a, b), B(b), Child(b, c), C(c), Child(a, c)")
    )
    bag = frozenset({"a", "b", "c"})
    assert bag_rows_estimate(bag, loose, stats) > bag_rows_estimate(bag, tight, stats)


def test_choose_propagator_rule():
    # Two unlabeled endpoints on a local axis: the hybrid's closed-form
    # intervals beat AC-4's quadratic support seeding.
    assert choose_propagator(compile_query(parse_query("Q() <- Child+(x, y)"))) is (
        Propagator.HYBRID
    )
    # Labels on every edge endpoint: AC-4.
    assert choose_propagator(compile_query(parse_query(ACYCLIC_CHAIN))) is Propagator.AC4
    # Global axes stay AC-4 even unlabeled (the measured ablation).
    assert choose_propagator(compile_query(parse_query("Q() <- Following(x, y)"))) is (
        Propagator.AC4
    )


# -- plan_query routing --------------------------------------------------------


def test_validate_routing():
    assert validate_routing("cost") == "cost"
    assert validate_routing("static") == "static"
    with pytest.raises(ValueError):
        validate_routing("greedy")


def test_static_routing_reproduces_pre_planner_rule():
    stats = DocumentStats.of_tree(_tree())
    for text in (FOUR_CYCLE, ACYCLIC_CHAIN, TRIANGLE):
        query = parse_query(text)
        plan = plan_query(query, stats, routing="static")
        assert plan.engine is choose_engine(query)
        assert plan.propagator is DEFAULT_PROPAGATOR
        assert plan.lowering == "tree"
        assert plan.materialize is False


def test_cost_routing_keeps_static_tiers():
    stats = DocumentStats.of_tree(_tree())
    for text in (ACYCLIC_CHAIN, TRIANGLE):
        query = parse_query(text)
        assert plan_query(query, stats, routing="cost").engine is choose_engine(query)
    cyclic = plan_query(parse_query(FOUR_CYCLE), stats, routing="cost")
    assert cyclic.engine in (Engine.DECOMPOSITION, Engine.BACKTRACKING)
    assert cyclic.engine is (
        Engine.DECOMPOSITION
        if cyclic.decomposition_cost <= cyclic.backtracking_cost
        else Engine.BACKTRACKING
    )


def test_overrides_always_win():
    stats = DocumentStats.of_tree(_tree())
    query = parse_query(FOUR_CYCLE)
    for routing in ("cost", "static"):
        plan = plan_query(
            query,
            stats,
            routing=routing,
            engine=Engine.BACKTRACKING,
            propagator=Propagator.AC3,
        )
        assert plan.engine is Engine.BACKTRACKING
        assert plan.propagator is Propagator.AC3


def test_accel_only_pins_sql_and_materialize_threshold():
    small = plan_query(
        parse_query(FOUR_CYCLE), DocumentStats.of_tree(_tree()), accel_only=True
    )
    assert small.engine is Engine.SQL
    assert small.materialize is False  # tiny bags stay plain CTEs
    big = plan_query(
        parse_query(FOUR_CYCLE),
        DocumentStats.approximate_from_nodes(50_000),
        accel_only=True,
    )
    assert big.engine is Engine.SQL
    assert big.lowering == "tree"
    assert max(big.bag_rows) > MATERIALIZE_ROWS_THRESHOLD
    assert big.materialize is True
    # The ablation baseline never materializes.
    static = plan_query(
        parse_query(FOUR_CYCLE),
        DocumentStats.approximate_from_nodes(50_000),
        routing="static",
        accel_only=True,
    )
    assert static.materialize is False


def test_estimated_cost_tracks_chosen_engine():
    stats = DocumentStats.of_tree(_tree())
    plan = plan_query(parse_query(FOUR_CYCLE), stats)
    expected = (
        plan.decomposition_cost
        if plan.engine is Engine.DECOMPOSITION
        else plan.backtracking_cost
    )
    assert plan.estimated_cost == expected
    sql = plan_query(parse_query(FOUR_CYCLE), stats, accel_only=True)
    assert sql.estimated_cost == (sql.flat_cost if sql.lowering == "flat" else sql.tree_cost)


def test_describe_is_json_friendly():
    plan = plan_query(parse_query(FOUR_CYCLE), DocumentStats.of_tree(_tree()))
    assert isinstance(plan, QueryPlan)
    described = plan.describe()
    assert described["routing"] == "cost"
    assert set(described["estimates"]) == {
        "bag_rows",
        "decomposition_cost",
        "backtracking_cost",
        "tree_cost",
        "flat_cost",
        "estimated_cost",
    }


# -- decomposition pruning (union-of-ranges prerequisite) ----------------------


def test_prune_subset_bags_no_redundant_neighbours():
    compiled = compile_query(parse_query(FOUR_CYCLE))
    decomposition = compiled.decomposition
    pruned = prune_subset_bags(decomposition)
    assert pruned.width == decomposition.width
    for i, bag in enumerate(pruned.bags):
        parent = pruned.parent[i]
        assert parent < i  # parents before children
        if parent >= 0:
            # The invariant union-of-ranges pruning relies on: no bag is
            # contained in its tree neighbour (it would make every variable
            # of the smaller bag a separator).
            assert not bag <= pruned.bags[parent]
            assert not pruned.bags[parent] <= bag


# -- the serving layer ---------------------------------------------------------


def _service(seed: int = 11):
    from repro.backends.sqlite import SQLiteBackend

    backend = SQLiteBackend()
    store = DocumentStore(accel_backend=backend)
    cache = QueryCache()
    store.register_tree("doc", _tree(80, seed=seed))
    accel_tree = random_tree(400, alphabet=ALPHABET, max_children=3, seed=seed + 1)
    store.register_tree_accel_only("accel", accel_tree)
    return store, cache


def test_stats_for_resident_exact_and_accel_approximate():
    store, _cache = _service()
    resident = store.stats_for("doc")
    assert not resident.approximate
    assert resident.nodes == 80
    accel = store.stats_for("accel")
    assert accel.approximate
    assert accel.nodes == 400
    with pytest.raises(DocumentNotFound):
        store.stats_for("missing")


def test_plans_cached_per_bucket_and_invalidated_by_reregistration():
    store, cache = _service()
    entry, _ = cache.resolve_text(FOUR_CYCLE)
    first = cache.plan_for(entry, store.stats_for("doc"))
    again = cache.plan_for(entry, store.stats_for("doc"))
    assert first is again  # memoized per (canonical query, stats bucket)
    assert cache.stats()["plan_entries"] >= 1
    # Re-registration with different contents moves the document to another
    # stats bucket, so the stale plan can never be served again.
    store.register_tree("doc", random_tree(2000, alphabet=ALPHABET, max_children=3, seed=99))
    replanned = cache.plan_for(entry, store.stats_for("doc"))
    assert replanned is not first
    assert replanned.stats_bucket != first.stats_bucket


def test_explain_reports_chosen_lowering_and_estimates():
    store, cache = _service()
    result = run_request(store, cache, Request(doc="accel", query=FOUR_CYCLE, explain=True))
    assert result.ok
    explain = result.explain
    assert explain["routing"] == "cost"
    assert explain["engine"] == "sql"
    assert explain["lowering"] in ("tree", "flat")
    assert isinstance(explain["materialize"], bool)
    assert explain["stats_bucket"].startswith("~")
    assert explain["estimates"]["estimated_cost"] == (
        explain["estimates"]["flat_cost"]
        if explain["lowering"] == "flat"
        else explain["estimates"]["tree_cost"]
    )
    assert "decomposition_static_cost" in explain
    # The satellite bugfix: the SQL text matches the lowering that runs.
    if explain["lowering"] == "flat":
        assert "bag_0" not in explain["sql"]
    else:
        assert "bag_0" in explain["sql"]


def test_explain_static_routing_is_the_ablation():
    store, cache = _service()
    result = run_request(
        store, cache, Request(doc="doc", query=FOUR_CYCLE, explain=True, routing="static")
    )
    assert result.ok
    assert result.explain["routing"] == "static"
    assert result.explain["materialize"] is False
    assert result.explain["lowering"] == "tree"
    assert result.explain["propagator"] == DEFAULT_PROPAGATOR.value


def test_unknown_routing_is_a_client_error():
    store, cache = _service()
    result = run_request(store, cache, Request(doc="doc", query=FOUR_CYCLE, routing="bad"))
    assert not result.ok
    assert "unknown routing" in result.error


# -- property suite ------------------------------------------------------------

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

QUERY_AXES = (Axis.CHILD, Axis.CHILD_PLUS, Axis.NEXT_SIBLING, Axis.FOLLOWING)


@st.composite
def small_queries(draw) -> ConjunctiveQuery:
    num_variables = draw(st.integers(min_value=2, max_value=4))
    variables = [f"v{i}" for i in range(num_variables)]
    rng = random.Random(draw(st.integers(min_value=0, max_value=10_000)))
    num_atoms = draw(st.integers(min_value=1, max_value=num_variables + 2))
    atoms: list = []
    for _ in range(num_atoms):
        source, target = rng.sample(variables, 2)
        atoms.append(AxisAtom(rng.choice(QUERY_AXES), source, target))
    for variable in variables:
        if rng.random() < 0.6:
            atoms.append(LabelAtom(rng.choice(ALPHABET), variable))
    arity = draw(st.integers(min_value=0, max_value=min(2, num_variables)))
    return ConjunctiveQuery(tuple(variables[:arity]), tuple(atoms), "Q")


@given(
    query=small_queries(),
    size=st.integers(min_value=1, max_value=14),
    seed=st.integers(min_value=0, max_value=10_000),
)
@SETTINGS
def test_cost_and_static_routing_are_byte_identical(query, size, seed):
    """The acceptance invariant: routing never changes answers.

    Exercised through ``run_request`` (the full serving path: cache, plan,
    evaluate, sort) for the default engine choice under every propagator,
    and for the two engine overrides that accept every query shape.
    """
    store = DocumentStore()
    cache = QueryCache()
    store.register_tree("doc", random_tree(size, alphabet=ALPHABET, max_children=3, seed=seed))
    variants = [{"propagator": p} for p in ("auto", "ac4", "ac3", "hybrid")]
    variants += [{"engine": e} for e in ("decomposition", "backtracking")]
    for overrides in variants:
        results = {
            routing: run_request(
                store, cache, Request(doc="doc", query=query, routing=routing, **overrides)
            )
            for routing in ("cost", "static")
        }
        for result in results.values():
            assert result.ok, result.error
        assert results["cost"].answers == results["static"].answers, overrides
        assert results["cost"].count == results["static"].count


@given(
    query=small_queries(),
    size=st.integers(min_value=4, max_value=30),
    seed=st.integers(min_value=0, max_value=10_000),
)
@SETTINGS
def test_plan_choice_invariant_under_alpha_renaming(query, size, seed):
    """Alpha-equivalent submissions share one cache entry and one plan."""
    renamed = ConjunctiveQuery(
        tuple(f"w{v[1:]}" for v in query.head),
        tuple(
            atom.__class__(atom.axis, f"w{atom.source[1:]}", f"w{atom.target[1:]}")
            if isinstance(atom, AxisAtom)
            else atom.__class__(atom.label, f"w{atom.variable[1:]}")
            for atom in query.body
        ),
        "R",
    )
    store = DocumentStore()
    cache = QueryCache()
    store.register_tree("doc", random_tree(size, alphabet=ALPHABET, max_children=3, seed=seed))
    stats = store.stats_for("doc")
    entry_a, _ = cache.resolve_query(query)
    entry_b, _ = cache.resolve_query(renamed)
    assert entry_a is entry_b
    plan_a = cache.plan_for(entry_a, stats)
    plan_b = cache.plan_for(entry_b, stats)
    assert plan_a is plan_b
    assert plan_a.engine is plan_b.engine
    assert plan_a.lowering == plan_b.lowering
