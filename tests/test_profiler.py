"""Tests for the sampling profiler: lifecycle, sampling, merging, HTTP control.

The profiler's contract: ``start``/``stop`` are idempotent and report whether
they changed anything; a busy thread shows up in the folded-stack table under
its function name; ``merge_snapshots`` sums fleet samples; the sharded
backend broadcasts control actions and merges worker snapshots; both HTTP
front ends expose ``GET/POST /profile``; and a running sampler at a moderate
rate must not meaningfully slow the sampled workload down.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service import (
    AsyncServerThread,
    BatchExecutor,
    ShardedExecutor,
    make_server,
)
from repro.observability.profiler import (
    MAX_HZ,
    SamplingProfiler,
    merge_snapshots,
)
from repro.trees import to_xml
from repro.workloads import auction_document


def spin_briefly(deadline: float) -> int:
    """A distinctive busy loop the sampler can catch in the act."""
    total = 0
    while time.perf_counter() < deadline:
        total += sum(range(200))
    return total


class TestLifecycle:
    def test_start_stop_are_idempotent(self):
        profiler = SamplingProfiler()
        assert profiler.start() is True
        assert profiler.start() is False  # already running: no-op
        assert profiler.running
        assert profiler.stop() is True
        assert profiler.stop() is False  # already stopped: no-op
        assert not profiler.running

    def test_out_of_range_hz_is_rejected_before_any_state_change(self):
        profiler = SamplingProfiler()
        with pytest.raises(ValueError):
            profiler.start(hz=0)
        with pytest.raises(ValueError):
            profiler.start(hz=MAX_HZ + 1)
        assert not profiler.running

    def test_clear_keeps_a_running_sampler_running(self):
        profiler = SamplingProfiler(hz=500)
        profiler.start()
        try:
            spin_briefly(time.perf_counter() + 0.05)
            profiler.clear()
            assert profiler.running
            snapshot = profiler.snapshot()
            assert snapshot["samples"] == snapshot["dropped"] == 0
        finally:
            profiler.stop()

    def test_reset_forgets_a_dead_thread_handle(self):
        # A forked child inherits `_thread` pointing at a thread that does not
        # exist in the child; reset must make start() work again without a join.
        profiler = SamplingProfiler()
        profiler.start()
        profiler.reset()
        assert not profiler.running
        assert profiler.start() is True
        profiler.stop()

    def test_control_maps_actions_and_rejects_unknown_ones(self):
        profiler = SamplingProfiler()
        status = profiler.control("start", hz=200)
        assert status["action"] == "start" and status["changed"] is True
        assert status["hz"] == 200 and "stacks" not in status
        assert profiler.control("start")["changed"] is False
        assert profiler.control("stop")["changed"] is True
        assert profiler.control("clear")["changed"] is True
        with pytest.raises(ValueError):
            profiler.control("pause")


class TestSampling:
    def test_busy_function_appears_in_folded_stacks(self):
        profiler = SamplingProfiler(max_stacks=100)
        assert profiler.start(hz=500)
        try:
            spin_briefly(time.perf_counter() + 0.3)
        finally:
            profiler.stop()
        snapshot = profiler.snapshot()
        assert snapshot["samples"] > 0
        matching = [stack for stack in snapshot["stacks"] if "spin_briefly" in stack]
        assert matching, f"spin_briefly not sampled; got {list(snapshot['stacks'])[:5]}"
        # Folded stacks are root-first file:function frames joined with ';'.
        assert any(frame.startswith("test_profiler.py:") for frame in matching[0].split(";"))

    def test_stack_table_is_bounded_but_totals_stay_honest(self):
        profiler = SamplingProfiler(max_stacks=1)
        profiler._stacks = {"already:full": 1}
        profiler._samples = 1
        profiler._sample(skip_ident=-1)  # samples this test's thread and friends
        snapshot = profiler.snapshot()
        assert len(snapshot["stacks"]) == 1
        assert snapshot["samples"] == snapshot["dropped"] + sum(snapshot["stacks"].values())

    def test_sampler_overhead_is_bounded(self):
        # Wall-clock sampling at ~100 Hz must not meaningfully slow the
        # workload.  The bound is deliberately loose (2x) -- this guards
        # against a pathologically broken sampler, not a few percent.
        deadline = 0.2
        started = time.perf_counter()
        spin_briefly(started + deadline)
        baseline = time.perf_counter() - started

        profiler = SamplingProfiler()
        profiler.start(hz=100)
        try:
            started = time.perf_counter()
            spin_briefly(started + deadline)
            sampled = time.perf_counter() - started
        finally:
            profiler.stop()
        assert sampled < 2.0 * baseline

    def test_merge_sums_stacks_and_takes_max_active_seconds(self):
        left = {"running": True, "hz": 97, "samples": 3, "dropped": 1,
                "active_seconds": 1.5, "stacks": {"a;b": 2, "a;c": 1}}
        right = {"running": False, "hz": 97, "samples": 2, "dropped": 0,
                 "active_seconds": 2.5, "stacks": {"a;b": 1, "d": 1}}
        merged = merge_snapshots([left, right])
        assert merged["running"] is True
        assert merged["samples"] == 5 and merged["dropped"] == 1
        assert merged["active_seconds"] == 2.5
        assert merged["stacks"] == {"a;b": 3, "a;c": 1, "d": 1}


@pytest.fixture
def auction_xml():
    return to_xml(auction_document(num_items=10, seed=3))


class TestExecutorIntegration:
    def test_sharded_profile_control_reaches_workers_and_merges(self, auction_xml):
        executor = ShardedExecutor(shards=2)
        try:
            executor.register_payload({"doc": "auction", "xml": auction_xml})
            status = executor.profile_control("start", hz=500)
            assert status["running"] is True
            assert status["workers"] == 2
            # Worker main threads block on their control queues -- wall-clock
            # sampling sees them there, so samples accrue even while idle.
            time.sleep(0.3)
            snapshot = executor.profile_snapshot()
            assert snapshot["samples"] > 0
            assert snapshot["stacks"]
            status = executor.profile_control("stop")
            assert status["changed"] is True
        finally:
            executor.close()

    def test_batch_executor_profile_roundtrip(self, auction_xml):
        executor = BatchExecutor()
        try:
            executor.store.register_xml("auction", auction_xml)
            assert executor.profile_control("start", 500)["running"] is True
            time.sleep(0.1)
            snapshot = executor.profile_snapshot()
            assert snapshot["running"] is True and snapshot["samples"] > 0
            executor.profile_control("stop")
        finally:
            executor.close()


def _call(base: str, method: str, path: str, payload=None):
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(base + path, data=data, method=method)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


class TestHTTPProfileRoute:
    def test_threaded_frontend_profile_route(self):
        httpd = make_server(BatchExecutor(), host="127.0.0.1", port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        host, port = httpd.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            status, body = _call(base, "POST", "/profile", {"action": "start", "hz": 500})
            assert status == 200 and body["running"] is True
            time.sleep(0.05)
            status, body = _call(base, "GET", "/profile")
            assert status == 200 and body["running"] is True
            assert set(body) >= {"hz", "samples", "dropped", "active_seconds", "stacks"}
            status, body = _call(base, "POST", "/profile", {"action": "stop"})
            assert status == 200 and body["running"] is False
            # Malformed control payloads answer 400, not 500.
            status, body = _call(base, "POST", "/profile", {"action": "pause"})
            assert status == 400 and "error" in body
            status, body = _call(base, "POST", "/profile", {"action": "start", "bogus": 1})
            assert status == 400
            status, body = _call(base, "POST", "/profile", {"action": "start", "hz": True})
            assert status == 400
        finally:
            httpd.executor.profile_control("stop")
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=5)

    def test_async_frontend_profile_route(self):
        backend = BatchExecutor()
        with AsyncServerThread(backend) as server:
            host, port = server.address
            base = f"http://{host}:{port}"
            status, body = _call(base, "POST", "/profile", {"action": "start", "hz": 500})
            assert status == 200 and body["running"] is True
            status, body = _call(base, "GET", "/profile")
            assert status == 200 and body["running"] is True
            status, body = _call(base, "POST", "/profile", {"action": "stop"})
            assert status == 200 and body["running"] is False
            status, body = _call(base, "POST", "/profile", {"action": "nope"})
            assert status == 400 and "error" in body
        backend.close()
