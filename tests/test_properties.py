"""Property-based tests (hypothesis) for the core invariants.

These cover the invariants the paper's machinery relies on:

* tree numberings are consistent permutations and characterise the axes,
* arc consistency is sound (never discards satisfying values) and its two
  implementations agree,
* the X-property evaluator agrees with backtracking on tractable signatures
  (Lemma 3.4 / Theorem 3.5),
* the CQ -> APQ rewriting preserves semantics and produces acyclic disjuncts
  (Lemma 6.5 / Theorem 6.6),
* Theorem 4.1's positive X-property claims hold on arbitrary generated trees.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.evaluation import (
    Engine,
    evaluate,
    evaluate_on_tree,
    is_satisfied,
    iter_solutions,
    maximal_arc_consistent,
    maximal_arc_consistent_horn,
)
from repro.evaluation.backtracking import boolean_query_holds as bt_holds
from repro.evaluation.xprop_evaluator import boolean_query_holds as xp_holds
from repro.queries import ConjunctiveQuery, is_acyclic
from repro.queries.atoms import AxisAtom, LabelAtom
from repro.rewriting import to_apq
from repro.trees import Axis, Order, Tree, TreeStructure, random_tree
from repro.trees.axes import AX, holds
from repro.xproperty import X_PROPERTY_AXES, has_x_property

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

ALPHABET = ("A", "B", "C")


@st.composite
def trees(draw, min_size: int = 1, max_size: int = 16) -> Tree:
    size = draw(st.integers(min_value=min_size, max_value=max_size))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    unlabeled = draw(st.sampled_from([0.0, 0.2]))
    return random_tree(
        size,
        alphabet=ALPHABET,
        max_children=3,
        unlabeled_probability=unlabeled,
        seed=seed,
    )


@st.composite
def queries(draw, axes: tuple[Axis, ...], max_variables: int = 4) -> ConjunctiveQuery:
    num_variables = draw(st.integers(min_value=2, max_value=max_variables))
    variables = [f"v{i}" for i in range(num_variables)]
    num_atoms = draw(st.integers(min_value=1, max_value=num_variables + 2))
    rng = random.Random(draw(st.integers(min_value=0, max_value=10_000)))
    atoms: list = []
    for _ in range(num_atoms):
        if num_variables >= 2:
            source, target = rng.sample(variables, 2)
        else:
            source, target = variables[0], variables[0]
        atoms.append(AxisAtom(rng.choice(list(axes)), source, target))
    for variable in variables:
        if rng.random() < 0.5:
            atoms.append(LabelAtom(rng.choice(ALPHABET), variable))
    return ConjunctiveQuery((), tuple(atoms), "H")


@st.composite
def head_queries(
    draw, axes: tuple[Axis, ...], max_variables: int = 4, max_arity: int = 2
) -> ConjunctiveQuery:
    """Like :func:`queries`, but with a random (possibly repeating) head."""
    query = draw(queries(axes, max_variables))
    body_variables = sorted({v for atom in query.body for v in atom.variables()})
    arity = draw(st.integers(min_value=0, max_value=max_arity))
    rng = random.Random(draw(st.integers(min_value=0, max_value=10_000)))
    head = tuple(rng.choice(body_variables) for _ in range(arity))
    return query.with_head(head)


class TestTreeInvariants:
    @SETTINGS
    @given(trees())
    def test_numberings_are_permutations(self, tree: Tree):
        n = len(tree)
        assert sorted(tree.pre) == list(range(n))
        assert sorted(tree.post) == list(range(n))
        assert sorted(tree.bflr) == list(range(n))

    @SETTINGS
    @given(trees())
    def test_descendant_interval_characterisation(self, tree: Tree):
        for u in tree.node_ids():
            for v in tree.node_ids():
                if u == v:
                    continue
                interval = tree.pre[u] < tree.pre[v] and tree.post[v] < tree.post[u]
                assert interval == holds(tree, Axis.CHILD_PLUS, u, v)

    @SETTINGS
    @given(trees())
    def test_each_non_root_has_exactly_one_parent(self, tree: Tree):
        for v in tree.node_ids():
            parents = [u for u in tree.node_ids() if holds(tree, Axis.CHILD, u, v)]
            if v == 0:
                assert parents == []
            else:
                assert len(parents) == 1

    @SETTINGS
    @given(trees())
    def test_following_partitions_disjoint_pairs(self, tree: Tree):
        """For distinct u, v exactly one of: u anc v, v anc u, F(u,v), F(v,u)."""
        for u in tree.node_ids():
            for v in tree.node_ids():
                if u == v:
                    continue
                relations = [
                    holds(tree, Axis.CHILD_PLUS, u, v),
                    holds(tree, Axis.CHILD_PLUS, v, u),
                    holds(tree, Axis.FOLLOWING, u, v),
                    holds(tree, Axis.FOLLOWING, v, u),
                ]
                assert sum(relations) == 1


class TestTheorem41Property:
    @SETTINGS
    @given(trees(max_size=12))
    def test_positive_x_property_claims(self, tree: Tree):
        for order in (Order.PRE, Order.POST, Order.BFLR):
            for axis in X_PROPERTY_AXES[order] & AX:
                assert has_x_property(tree, axis, order)


class TestArcConsistencyProperties:
    @SETTINGS
    @given(trees(max_size=12), queries((Axis.CHILD, Axis.CHILD_PLUS, Axis.FOLLOWING)))
    def test_soundness_every_solution_survives(self, tree: Tree, query: ConjunctiveQuery):
        structure = TreeStructure(tree)
        domains = maximal_arc_consistent(query, structure)
        solutions = list(iter_solutions(query, structure))
        if solutions:
            assert domains is not None
            for solution in solutions:
                for variable, node in solution.items():
                    assert node in domains[variable]

    @SETTINGS
    @given(
        trees(max_size=10),
        queries((Axis.CHILD, Axis.CHILD_STAR, Axis.NEXT_SIBLING_PLUS)),
    )
    def test_worklist_and_horn_agree(self, tree: Tree, query: ConjunctiveQuery):
        structure = TreeStructure(tree)
        assert maximal_arc_consistent(query, structure) == maximal_arc_consistent_horn(
            query, structure
        )


class TestEvaluatorAgreementProperties:
    @SETTINGS
    @given(trees(max_size=14), queries((Axis.CHILD_PLUS, Axis.CHILD_STAR)))
    def test_xproperty_agrees_with_backtracking_pre_group(self, tree, query):
        structure = TreeStructure(tree)
        assert xp_holds(query, structure, verify=True) == bt_holds(query, structure)

    @SETTINGS
    @given(trees(max_size=14), queries((Axis.FOLLOWING,)))
    def test_xproperty_agrees_with_backtracking_following(self, tree, query):
        structure = TreeStructure(tree)
        assert xp_holds(query, structure, verify=True) == bt_holds(query, structure)

    @SETTINGS
    @given(
        trees(max_size=14),
        queries((Axis.CHILD, Axis.NEXT_SIBLING, Axis.NEXT_SIBLING_PLUS, Axis.NEXT_SIBLING_STAR)),
    )
    def test_xproperty_agrees_with_backtracking_bflr_group(self, tree, query):
        structure = TreeStructure(tree)
        assert xp_holds(query, structure, verify=True) == bt_holds(query, structure)

    @SETTINGS
    @given(trees(max_size=12), queries((Axis.CHILD, Axis.CHILD_PLUS, Axis.FOLLOWING)))
    def test_planner_agrees_with_backtracking_everywhere(self, tree, query):
        structure = TreeStructure(tree)
        assert is_satisfied(query, structure) == bt_holds(query, structure)


class TestDecompositionEngineProperties:
    """The structural engine must agree with backtracking *exactly*.

    The matrix covers cyclic and acyclic shapes (the random atom soup produces
    both), every propagator, random k-ary heads (including repeated head
    variables) and pinning; answers are compared as byte-identical sorted
    lists, which is what the serving layer ultimately emits.
    """

    @SETTINGS
    @given(
        trees(max_size=12),
        head_queries((Axis.CHILD, Axis.CHILD_PLUS, Axis.FOLLOWING)),
        st.sampled_from(["ac4", "ac3", "horn", "hybrid"]),
    )
    def test_answers_match_backtracking(self, tree, query, propagator):
        structure = TreeStructure(tree)
        decomposition_answers = sorted(
            evaluate(query, structure, engine=Engine.DECOMPOSITION, propagator=propagator)
        )
        backtracking_answers = sorted(
            evaluate(query, structure, engine=Engine.BACKTRACKING, propagator=propagator)
        )
        assert repr(decomposition_answers) == repr(backtracking_answers)

    @SETTINGS
    @given(
        trees(max_size=12),
        queries((Axis.CHILD, Axis.NEXT_SIBLING_PLUS, Axis.FOLLOWING)),
        st.sampled_from(["ac4", "ac3", "horn", "hybrid"]),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_boolean_with_pinning_matches_backtracking(
        self, tree, query, propagator, seed
    ):
        structure = TreeStructure(tree)
        rng = random.Random(seed)
        variable = rng.choice(query.variables())
        pinned = {variable: rng.randrange(len(tree))}
        assert is_satisfied(
            query, structure, Engine.DECOMPOSITION, pinned, propagator
        ) == is_satisfied(query, structure, Engine.BACKTRACKING, pinned, propagator)

    @SETTINGS
    @given(trees(max_size=12), head_queries((Axis.CHILD_STAR, Axis.NEXT_SIBLING_STAR)))
    def test_reflexive_axes_match_backtracking(self, tree, query):
        structure = TreeStructure(tree)
        assert sorted(
            evaluate(query, structure, engine=Engine.DECOMPOSITION)
        ) == sorted(evaluate(query, structure, engine=Engine.BACKTRACKING))

    @SETTINGS
    @given(trees(max_size=12), head_queries((Axis.CHILD, Axis.CHILD_PLUS, Axis.FOLLOWING)))
    def test_planner_auto_matches_backtracking_with_heads(self, tree, query):
        # Whatever engine the planner picks (xproperty / acyclic /
        # decomposition / backtracking), the answer list is the same.
        structure = TreeStructure(tree)
        assert sorted(evaluate(query, structure)) == sorted(
            evaluate(query, structure, engine=Engine.BACKTRACKING)
        )


class TestRewritingProperties:
    @SETTINGS
    @given(trees(max_size=10), queries((Axis.CHILD, Axis.CHILD_PLUS, Axis.CHILD_STAR), 3))
    def test_to_apq_preserves_boolean_semantics(self, tree, query):
        apq = to_apq(query)
        assert all(is_acyclic(disjunct) for disjunct in apq)
        expected = bool(evaluate_on_tree(query, tree))
        rewritten = any(bool(evaluate_on_tree(disjunct, tree)) for disjunct in apq)
        assert expected == rewritten

    @SETTINGS
    @given(
        trees(max_size=10),
        queries((Axis.NEXT_SIBLING, Axis.NEXT_SIBLING_PLUS, Axis.CHILD), 3),
    )
    def test_to_apq_preserves_semantics_sibling_family(self, tree, query):
        apq = to_apq(query)
        expected = bool(evaluate_on_tree(query, tree))
        rewritten = any(bool(evaluate_on_tree(disjunct, tree)) for disjunct in apq)
        assert expected == rewritten
