"""Tests for renaming-invariant query canonicalization (service cache keys)."""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.evaluation import compile_query, evaluate
from repro.queries import (
    canonical_key,
    canonicalize,
    parse_query,
    simplify_query,
    xpath_to_cq,
)
from repro.queries.atoms import AxisAtom, LabelAtom
from repro.queries.query import ConjunctiveQuery
from repro.trees import TreeStructure, random_tree
from repro.trees.axes import Axis

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestCanonicalKeyInvariance:
    def test_textually_different_alpha_equivalent_queries_share_a_key(self):
        first = parse_query("Q(x) <- A(x), Child(x, y), B(y)")
        second = parse_query("Result(item) <- B(w), A(item), Child(item, w)")
        assert canonical_key(first) == canonical_key(second)
        assert canonicalize(first) == canonicalize(second)

    def test_name_is_ignored(self):
        assert canonical_key(parse_query("Q <- A(x)")) == canonical_key(
            parse_query("SomethingElse <- A(x)")
        )

    def test_body_order_is_ignored(self):
        first = parse_query("Q <- A(x), Child(x, y), Following(y, z)")
        second = parse_query("Q <- Following(y, z), Child(x, y), A(x)")
        assert canonical_key(first) == canonical_key(second)

    def test_symmetric_cycle_rotations_share_a_key(self):
        first = parse_query("Q <- Following(x, y), Following(y, z), Following(z, x)")
        second = parse_query("Q <- Following(b, c), Following(c, a), Following(a, b)")
        assert canonical_key(first) == canonical_key(second)

    def test_head_positions_are_semantic(self):
        straight = parse_query("Q(x, y) <- Child(x, y)")
        swapped = parse_query("Q(y, x) <- Child(x, y)")
        renamed = parse_query("Q(a, b) <- Child(a, b)")
        assert canonical_key(straight) != canonical_key(swapped)
        assert canonical_key(straight) == canonical_key(renamed)

    def test_repeated_head_variable_is_not_conflated_with_distinct_ones(self):
        repeated = parse_query("Q(x, x) <- A(x)")
        renamed = parse_query("Q(y, y) <- A(y)")
        distinct = parse_query("Q(x, y) <- A(x), A(y)")
        assert canonical_key(repeated) == canonical_key(renamed)
        assert canonical_key(repeated) != canonical_key(distinct)

    def test_inequivalent_queries_get_distinct_keys(self):
        assert canonical_key(parse_query("Q <- Child(x, y)")) != canonical_key(
            parse_query("Q <- Child+(x, y)")
        )
        assert canonical_key(parse_query("Q <- A(x)")) != canonical_key(
            parse_query("Q <- B(x)")
        )
        # Boolean Child(x, y) and Child(y, x) ARE alpha-equivalent (swap the
        # variables); with a head the direction becomes observable.
        assert canonical_key(parse_query("Q <- Child(x, y)")) == canonical_key(
            parse_query("Q <- Child(y, x)")
        )
        assert canonical_key(parse_query("Q(x) <- Child(x, y)")) != canonical_key(
            parse_query("Q(x) <- Child(y, x)")
        )

    def test_xpath_translations_canonicalize_like_their_datalog_twins(self):
        from_xpath = xpath_to_cq("//A[B]")
        # The translator emits Child*(root, hit) for the leading `//`.
        twin = parse_query("Q(sel) <- Child*(start, sel), A(sel), Child(sel, b), B(b)")
        assert canonical_key(from_xpath) == canonical_key(twin)

    def test_compile_cache_shared_by_alpha_equivalent_queries(self):
        first = canonicalize(parse_query("Q(x) <- A(x), Child+(x, y)"))
        second = canonicalize(parse_query("P(u) <- Child+(u, w), A(u)"))
        assert compile_query(first) is compile_query(second)


# ---------------------------------------------------------------------------
# Property: canonicalization is invariant under renaming + shuffling, and the
# representative evaluates identically.
# ---------------------------------------------------------------------------

ALPHABET = ("A", "B", "C")
AXES = (
    Axis.CHILD,
    Axis.CHILD_PLUS,
    Axis.CHILD_STAR,
    Axis.FOLLOWING,
    Axis.NEXT_SIBLING_PLUS,
    Axis.PARENT,
)


@st.composite
def random_queries(draw, max_variables: int = 5) -> ConjunctiveQuery:
    rng = random.Random(draw(st.integers(min_value=0, max_value=100_000)))
    num_variables = draw(st.integers(min_value=1, max_value=max_variables))
    variables = [f"q{i}" for i in range(num_variables)]
    atoms: list = []
    for _ in range(draw(st.integers(min_value=1, max_value=num_variables + 2))):
        atoms.append(
            AxisAtom(rng.choice(AXES), rng.choice(variables), rng.choice(variables))
        )
    for variable in variables:
        if rng.random() < 0.4:
            atoms.append(LabelAtom(rng.choice(ALPHABET), variable))
    # Only safe heads: evaluate()'s pinning reduction requires head variables
    # to occur in the body (the textual parser rejects unsafe queries too).
    body_variables = sorted({v for atom in atoms for v in atom.variables()})
    arity = draw(st.integers(min_value=0, max_value=min(2, len(body_variables))))
    head = tuple(rng.choice(body_variables) for _ in range(arity))
    return ConjunctiveQuery(head, tuple(atoms), "R")


class TestCanonicalProperties:
    @SETTINGS
    @given(random_queries(), st.integers(min_value=0, max_value=100_000))
    def test_invariant_under_renaming_and_shuffling(self, query, seed):
        rng = random.Random(seed)
        variables = list(query.variables())
        targets = [f"renamed_{i}" for i in range(len(variables))]
        rng.shuffle(targets)
        renamed = query.rename(dict(zip(variables, targets)))
        shuffled_body = list(renamed.body)
        rng.shuffle(shuffled_body)
        twin = ConjunctiveQuery(renamed.head, tuple(shuffled_body), "S")
        assert canonical_key(query) == canonical_key(twin)
        assert canonicalize(query) == canonicalize(twin)

    @SETTINGS
    @given(random_queries())
    def test_idempotent_and_answer_preserving(self, query):
        representative = canonicalize(query)
        assert canonicalize(representative) == representative
        structure = TreeStructure(random_tree(18, alphabet=ALPHABET, seed=11))
        assert evaluate(query, structure) == evaluate(representative, structure)


class TestSimplifyQuery:
    def test_xpath_root_step_and_joint_collapse(self):
        query = xpath_to_cq("//description//listitem")
        simplified = simplify_query(query)
        # Child*(x0, x1) is dropped (x0 is a vacuous dangler) and
        # Child*(x1, x2), Child(x2, x3) composes into Child+(x1, x3).
        axes = sorted(a.axis for a in simplified.body if isinstance(a, AxisAtom))
        assert axes == [Axis.CHILD_PLUS]
        labels = sorted(a.label for a in simplified.body if isinstance(a, LabelAtom))
        assert labels == ["description", "listitem"]
        assert simplified.head == query.head

    def test_reflexive_dangler_is_dropped(self):
        query = parse_query("Q(y) <- A(y), Child*(x, y)")
        simplified = simplify_query(query)
        assert simplified.body == (LabelAtom("A", "y"),)

    def test_unsafe_drop_is_refused(self):
        # Removing the only atom would leave the head variable without a body
        # occurrence; the rewrite must keep the query safe for evaluate().
        query = ConjunctiveQuery(("y",), (AxisAtom(Axis.CHILD_STAR, "x", "y"),), "Q")
        assert simplify_query(query) == query

    def test_labeled_and_head_variables_are_never_projected(self):
        query = parse_query("Q(m) <- A(a), Child*(a, m), M(m), Child(m, b), B(b)")
        simplified = simplify_query(query)
        assert set(simplified.variables()) == {"a", "m", "b"}
        assert simplified == query

    def test_child_plus_chains_are_not_composed(self):
        # Child+ . Child+ (grandchild-or-deeper) has no single-axis equivalent.
        query = parse_query("Q <- A(a), Child+(a, m), Child+(m, b), B(b)")
        assert simplify_query(query) == query

    def test_idempotent(self):
        for text in ("//description//listitem", "//NP[NN]", "//VP[VB]/NP"):
            simplified = simplify_query(xpath_to_cq(text))
            assert simplify_query(simplified) == simplified

    @SETTINGS
    @given(random_queries())
    def test_answer_preserving_on_random_queries(self, query):
        simplified = simplify_query(query)
        structure = TreeStructure(random_tree(18, alphabet=ALPHABET, seed=23))
        assert evaluate(query, structure) == evaluate(simplified, structure)

    @SETTINGS
    @given(random_queries(), st.integers(min_value=0, max_value=100_000))
    def test_commutes_with_renaming_up_to_alpha(self, query, seed):
        rng = random.Random(seed)
        variables = list(query.variables())
        targets = [f"renamed_{i}" for i in range(len(variables))]
        rng.shuffle(targets)
        twin = query.rename(dict(zip(variables, targets)))
        assert canonical_key(simplify_query(query)) == canonical_key(
            simplify_query(twin)
        )
