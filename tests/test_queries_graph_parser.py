"""Tests for query graphs (cycles, components, paths) and the datalog parser."""

from __future__ import annotations

import pytest

from repro.queries import ConjunctiveQuery, QueryGraph, QueryParseError, parse_query
from repro.queries.graph import has_directed_cycle, is_acyclic
from repro.trees import Axis


def q(text: str) -> ConjunctiveQuery:
    return parse_query(text)


class TestParser:
    def test_basic_rule(self):
        query = q("Q(z) <- A(x), Child(x, y), B(y), Following(x, z), C(z)")
        assert query.arity == 1
        assert query.size() == 5
        assert query.signature().axes == {Axis.CHILD, Axis.FOLLOWING}

    def test_boolean_and_headless(self):
        assert q("Q() <- A(x)").is_boolean
        assert q("Q <- A(x)").is_boolean
        assert q("A(x), Child(x, y)").is_boolean  # no arrow at all

    def test_alternative_arrow(self):
        assert q("Q(x) :- A(x)").arity == 1

    def test_power_shortcut(self):
        query = q("Q <- Child^3(x, y)")
        assert query.size() == 3
        assert len(query.variables()) == 4

    def test_axis_aliases(self):
        query = q("Q <- Descendant(x, y), FollowingSibling(y, z)")
        assert Axis.CHILD_PLUS in query.signature()
        assert Axis.NEXT_SIBLING_PLUS in query.signature()

    def test_true_body(self):
        query = q("Q() <- true")
        assert query.size() == 0

    def test_errors(self):
        with pytest.raises(QueryParseError):
            q("Q(x) <- Child(x)")  # axis with one argument
        with pytest.raises(QueryParseError):
            q("Q(x) <- Unknown(x, y)")  # unknown binary predicate
        with pytest.raises(QueryParseError):
            q("Q(x) <- A^2(x)")  # power on a label atom
        with pytest.raises(QueryParseError):
            q("Q(x) <- A(x, y, z)")  # arity 3
        with pytest.raises(QueryParseError):
            q("Q(missing) <- A(x)")  # unsafe head
        with pytest.raises(QueryParseError):
            q("123 <- A(x)")  # malformed head

    def test_roundtrip_through_str(self):
        original = q("Q(z) <- A(x), Child+(x, z), NextSibling*(x, y)")
        reparsed = parse_query(str(original))
        assert frozenset(reparsed.body) == frozenset(original.body)
        assert reparsed.head == original.head


class TestQueryGraphCycles:
    def test_acyclic_chain(self):
        assert is_acyclic(q("Q <- A(x), Child(x, y), Child(y, z)"))

    def test_triangle_is_cyclic(self):
        assert not is_acyclic(
            q("Q <- Child(x, y), Child(y, z), Child+(x, z)")
        )

    def test_parallel_edges_are_a_cycle(self):
        assert not is_acyclic(q("Q <- Child*(x, y), NextSibling*(x, y)"))

    def test_self_loop_is_a_cycle(self):
        assert not is_acyclic(q("Q <- Child*(x, x)"))

    def test_opposite_edges_are_a_cycle(self):
        assert not is_acyclic(q("Q <- Child(x, y), Child+(y, x)"))

    def test_diamond_is_cyclic_but_dag(self):
        query = q("Q <- Child+(a, b), Child+(a, c), Child+(b, d), Child+(c, d)")
        assert not is_acyclic(query)
        assert not has_directed_cycle(query)

    def test_directed_cycle_detection(self):
        query = q("Q <- Child*(x, y), Child*(y, z), Child*(z, x)")
        graph = QueryGraph(query)
        assert graph.has_directed_cycle()
        components = graph.directed_cycle_components()
        assert {"x", "y", "z"} in components

    def test_self_loop_is_directed_cycle(self):
        assert has_directed_cycle(q("Q <- Child+(x, x), A(y)"))

    def test_undirected_cycle_edges_are_returned(self):
        query = q("Q <- Child(a, b), Child(a, c), Child+(b, d), Child+(c, d)")
        cycle = QueryGraph(query).find_undirected_cycle()
        assert cycle is not None
        assert len({edge.index for edge in cycle}) >= 2
        touched = {v for edge in cycle for v in (edge.source, edge.target)}
        assert touched <= {"a", "b", "c", "d"}

    def test_labels_do_not_create_edges(self):
        assert is_acyclic(q("Q <- A(x), B(x), C(x), Child(x, y), D(y)"))


class TestQueryGraphStructure:
    def test_connected_components(self):
        query = q("Q <- Child(a, b), Child(c, d), E(e)")
        components = QueryGraph(query).connected_components()
        as_sets = {frozenset(component) for component in components}
        assert frozenset({"a", "b"}) in as_sets
        assert frozenset({"c", "d"}) in as_sets
        assert frozenset({"e"}) in as_sets

    def test_reachability(self):
        graph = QueryGraph(q("Q <- Child(a, b), Child(b, c), Child(d, c)"))
        assert graph.reachable_from("a") == {"a", "b", "c"}
        assert graph.reachable_from("d") == {"d", "c"}
        assert graph.reachable_from("c") == {"c"}

    def test_variable_paths_of_dag(self):
        query = q("Q <- Child+(a, b), Child+(b, d), Child+(a, c), Child+(c, d), Child+(d, e)")
        graph = QueryGraph(query)
        paths = {tuple(path) for path in graph.variable_paths()}
        assert ("a", "b", "d", "e") in paths
        assert ("a", "c", "d", "e") in paths
        assert len(paths) == 2

    def test_variable_paths_rejects_directed_cycles(self):
        graph = QueryGraph(q("Q <- Child*(x, y), Child*(y, x)"))
        with pytest.raises(ValueError):
            graph.variable_paths()

    def test_isolated_variable_is_its_own_path(self):
        query = q("Q <- A(x), Child(a, b)")
        paths = {tuple(path) for path in QueryGraph(query).variable_paths()}
        assert ("x",) in paths
        assert ("a", "b") in paths

    def test_strongly_connected_components(self):
        graph = QueryGraph(
            q("Q <- Child*(x, y), Child*(y, x), Child(y, z), Child(z, w)")
        )
        sccs = graph.strongly_connected_components()
        assert {"x", "y"} in sccs
        assert {"z"} in sccs
        assert {"w"} in sccs
