"""Tests for the query model: atoms, ConjunctiveQuery, builder, chains, unions."""

from __future__ import annotations

import pytest

from repro.queries import (
    ConjunctiveQuery,
    QueryBuilder,
    UnionQuery,
    as_union,
    axis,
    axis_chain,
    label,
)
from repro.queries.atoms import AxisAtom, LabelAtom
from repro.trees import Axis


class TestAtoms:
    def test_label_atom(self):
        atom = label("NP", "x")
        assert atom.variables() == ("x",)
        assert str(atom) == "NP(x)"
        assert atom.rename({"x": "y"}) == LabelAtom("NP", "y")

    def test_axis_atom(self):
        atom = axis(Axis.CHILD_PLUS, "x", "y")
        assert atom.variables() == ("x", "y")
        assert str(atom) == "Child+(x, y)"
        assert not atom.is_loop()
        assert AxisAtom(Axis.CHILD_STAR, "z", "z").is_loop()

    def test_atoms_are_hashable_and_comparable(self):
        atoms = {label("A", "x"), label("A", "x"), axis(Axis.CHILD, "x", "y")}
        assert len(atoms) == 2
        assert sorted([label("B", "x"), label("A", "x")])[0].label == "A"


class TestConjunctiveQuery:
    def make_query(self) -> ConjunctiveQuery:
        return ConjunctiveQuery.create(
            head=("z",),
            body=(
                label("S", "x"),
                axis(Axis.CHILD, "x", "y"),
                label("NP", "y"),
                axis(Axis.FOLLOWING, "x", "z"),
                label("C", "z"),
            ),
            name="Q",
        )

    def test_basic_accessors(self):
        query = self.make_query()
        assert query.arity == 1
        assert query.is_monadic and not query.is_boolean
        assert query.variables() == ("z", "x", "y")
        assert query.size() == 5
        assert query.labels() == {"S", "NP", "C"}
        assert query.labels_of("x") == {"S"}
        assert query.signature().axes == {Axis.CHILD, Axis.FOLLOWING}

    def test_duplicate_atoms_removed(self):
        query = ConjunctiveQuery.boolean(
            (label("A", "x"), label("A", "x"), axis(Axis.CHILD, "x", "y"))
        )
        assert query.size() == 2

    def test_unsafe_head_detected(self):
        unsafe = ConjunctiveQuery.create(head=("missing",), body=(label("A", "x"),))
        assert not unsafe.is_safe()
        assert self.make_query().is_safe()

    def test_rename_and_substitute(self):
        query = self.make_query()
        renamed = query.rename({"x": "root", "z": "answer"})
        assert renamed.head == ("answer",)
        assert "root" in renamed.variables()
        assert "x" not in renamed.variables()
        substituted = query.substitute("y", "x")
        assert "y" not in substituted.variables()
        # The Child atom becomes a self loop; it is retained as such.
        assert AxisAtom(Axis.CHILD, "x", "x") in substituted.body

    def test_with_and_without_atoms(self):
        query = self.make_query()
        extended = query.with_atoms(label("Extra", "x"))
        assert extended.size() == query.size() + 1
        reduced = extended.without_atoms(label("Extra", "x"))
        assert frozenset(reduced.body) == frozenset(query.body)

    def test_as_boolean_and_with_head(self):
        query = self.make_query()
        assert query.as_boolean().is_boolean
        assert query.with_head(("x", "z")).arity == 2

    def test_fresh_variable(self):
        query = self.make_query()
        fresh = query.fresh_variable("x")
        assert fresh not in query.variables()

    def test_str_and_pretty(self):
        query = self.make_query()
        assert str(query).startswith("Q(z) <- S(x)")
        assert "Following(x, z)" in query.pretty()
        empty = ConjunctiveQuery.boolean(())
        assert "true" in str(empty)


class TestAxisChainAndBuilder:
    def test_axis_chain_lengths(self):
        chain3 = axis_chain(Axis.CHILD, 3, "a", "b")
        assert len(chain3) == 3
        assert chain3[0].source == "a"
        assert chain3[-1].target == "b"
        intermediates = {atom.target for atom in chain3[:-1]}
        assert len(intermediates) == 2
        chain1 = axis_chain(Axis.FOLLOWING, 1, "a", "b")
        assert chain1 == [AxisAtom(Axis.FOLLOWING, "a", "b")]
        with pytest.raises(ValueError):
            axis_chain(Axis.CHILD, 0, "a", "b")

    def test_chains_with_distinct_endpoints_do_not_collide(self):
        first = axis_chain(Axis.CHILD, 3, "x1", "y1")
        second = axis_chain(Axis.CHILD, 3, "x2", "y2")
        first_vars = {v for atom in first for v in atom.variables()}
        second_vars = {v for atom in second for v in atom.variables()}
        assert first_vars.isdisjoint(second_vars)

    def test_builder_roundtrip(self):
        query = (
            QueryBuilder("B")
            .label("S", "x")
            .descendant("x", "y")
            .label("NP", "y")
            .descendant_or_self("x", "w")
            .next_sibling("y", "s")
            .following_sibling("y", "t")
            .following("y", "z")
            .label("PP", "z")
            .chain(Axis.CHILD, 2, "x", "deep")
            .select("z")
            .build()
        )
        assert query.arity == 1
        assert Axis.CHILD_PLUS in query.signature()
        assert Axis.NEXT_SIBLING in query.signature()
        assert Axis.NEXT_SIBLING_PLUS in query.signature()
        assert Axis.CHILD_STAR in query.signature()
        assert query.size() >= 9


class TestUnionQuery:
    def test_union_basics(self):
        q1 = ConjunctiveQuery.create(("x",), (label("A", "x"),))
        q2 = ConjunctiveQuery.create(("y",), (label("B", "y"),))
        union = UnionQuery.of(q1, q2, name="U")
        assert len(union) == 2
        assert union.arity == 1
        assert not union.is_empty()
        assert union.size() == 2
        assert union.is_acyclic()

    def test_mixed_arity_rejected(self):
        q1 = ConjunctiveQuery.create(("x",), (label("A", "x"),))
        q2 = ConjunctiveQuery.boolean((label("B", "y"),))
        with pytest.raises(ValueError):
            UnionQuery.of(q1, q2)

    def test_deduplication(self):
        q1 = ConjunctiveQuery.boolean((label("A", "x"), label("B", "x")))
        q2 = ConjunctiveQuery.boolean((label("B", "x"), label("A", "x")))
        union = UnionQuery.of(q1, q2).deduplicated()
        assert len(union) == 1

    def test_as_union_and_signature(self):
        q1 = ConjunctiveQuery.boolean((axis(Axis.CHILD, "x", "y"),))
        union = as_union(q1)
        assert isinstance(union, UnionQuery)
        assert len(union) == 1
        assert as_union(union) is union
        assert Axis.CHILD in union.signature()

    def test_empty_union_is_unsatisfiable_marker(self):
        union = UnionQuery((), "Empty")
        assert union.is_empty()
        assert union.arity == 0
        assert "unsatisfiable" in str(union)
