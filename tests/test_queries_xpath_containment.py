"""Tests for the XPath fragment translation and the containment utilities."""

from __future__ import annotations

import pytest

from repro.evaluation import evaluate_on_tree
from repro.queries import (
    XPathTranslationError,
    answers_on,
    apq_to_xpath,
    as_union,
    contained_on_samples,
    contained_on_trees,
    cq_to_xpath,
    equivalent_on_samples,
    equivalent_on_trees,
    is_acyclic,
    parse_query,
    xpath_to_cq,
)
from repro.trees import Axis, from_nested


class TestXPathToCQ:
    def test_paper_example(self, sentence_tree):
        """//A[B]/following::C from the introduction, on a suitable tree."""
        tree = from_nested(
            ("R", [("A", [("B", [])]), ("D", []), ("C", []), ("A", []), ("C", [])])
        )
        query = xpath_to_cq("//A[B]/following::C")
        assert query.is_monadic
        assert is_acyclic(query)
        answers = {node for (node,) in evaluate_on_tree(query, tree)}
        # Both C nodes follow the A that has a B child.
        c_nodes = set(tree.nodes_with_label("C"))
        assert answers == c_nodes

    def test_child_steps_and_predicates(self):
        query = xpath_to_cq("/site/regions/item[payment]")
        assert query.labels() >= {"site", "regions", "item", "payment"}
        assert Axis.CHILD in query.signature()
        assert is_acyclic(query)

    def test_descendant_shorthand(self, sentence_tree):
        query = xpath_to_cq("//NP")
        answers = {node for (node,) in evaluate_on_tree(query, sentence_tree)}
        assert answers == set(sentence_tree.nodes_with_label("NP"))

    def test_backward_axes_are_swapped(self, sentence_tree):
        query = xpath_to_cq("//NN/parent::NP")
        answers = {node for (node,) in evaluate_on_tree(query, sentence_tree)}
        assert answers == {1, 6}
        ancestor_query = xpath_to_cq("//VB/ancestor::S")
        assert {node for (node,) in evaluate_on_tree(ancestor_query, sentence_tree)} == {0}

    def test_nested_predicates(self, sentence_tree):
        query = xpath_to_cq("//S[NP[NN]]")
        answers = {node for (node,) in evaluate_on_tree(query, sentence_tree)}
        assert answers == {0}

    def test_errors(self):
        with pytest.raises(XPathTranslationError):
            xpath_to_cq("")
        with pytest.raises(XPathTranslationError):
            xpath_to_cq("//A[B")  # unbalanced bracket -> parse failure
        with pytest.raises(XPathTranslationError):
            xpath_to_cq("//namespace::A")  # unsupported axis


class TestCQToXPath:
    def test_roundtrip_semantics(self, sentence_tree):
        original = parse_query(
            "Q(z) <- S(x), Child+(x, z), NP(z), Child(z, w), NN(w)"
        )
        expression = cq_to_xpath(original)
        back = xpath_to_cq(expression)
        assert answers_on(original, sentence_tree) == answers_on(back, sentence_tree)

    def test_head_without_label(self, sentence_tree):
        original = parse_query("Q(y) <- S(x), Child(x, y)")
        expression = cq_to_xpath(original)
        back = xpath_to_cq(expression)
        assert answers_on(original, sentence_tree) == answers_on(back, sentence_tree)

    def test_rejects_cyclic_nonmonadic_and_nextsibling(self):
        with pytest.raises(XPathTranslationError):
            cq_to_xpath(parse_query("Q(x) <- Child(x, y), Child+(x, y)"))
        with pytest.raises(XPathTranslationError):
            cq_to_xpath(parse_query("Q(x, y) <- Child(x, y)"))
        with pytest.raises(XPathTranslationError):
            cq_to_xpath(parse_query("Q(x) <- NextSibling(x, y)"))
        with pytest.raises(XPathTranslationError):
            cq_to_xpath(parse_query("Q(x) <- A(x), B(y), Child(y, z)"))

    def test_apq_to_xpath_union(self, sentence_tree):
        q1 = parse_query("Q(x) <- NP(x)")
        q2 = parse_query("Q(x) <- PP(x)")
        expression = apq_to_xpath(as_union(q1).union(as_union(q2)))
        assert "|" in expression
        with pytest.raises(XPathTranslationError):
            apq_to_xpath(as_union(q1).__class__((), "empty"))


class TestContainmentUtilities:
    def test_contained_on_trees_positive(self):
        smaller = parse_query("Q(x) <- A(x), Child(y, x), B(y)")
        larger = parse_query("Q(x) <- A(x)")
        assert contained_on_trees(smaller, larger, max_size=3) is None
        counterexample = contained_on_trees(larger, smaller, max_size=3)
        assert counterexample is not None

    def test_equivalent_on_trees(self):
        child_star = parse_query("Q(x, y) <- Child*(x, y)")
        union = as_union(parse_query("Q(x, y) <- Child+(x, y)")).union(
            as_union(parse_query("Q(x, x) <- Child*(x, x)"))
        )
        assert equivalent_on_trees(child_star, union, max_size=3) is None

    def test_equivalence_counterexample_found(self):
        child = parse_query("Q(x, y) <- Child(x, y)")
        descendant = parse_query("Q(x, y) <- Child+(x, y)")
        assert equivalent_on_trees(child, descendant, max_size=3) is not None

    def test_sample_based_checks(self):
        child = parse_query("Q <- A(x), Child(x, y), B(y)")
        descendant = parse_query("Q <- A(x), Child+(x, y), B(y)")
        assert contained_on_samples(child, descendant, samples=10, size=15) is None
        assert equivalent_on_samples(child, descendant, samples=20, size=15) is not None

    def test_answers_on(self, sentence_tree):
        query = parse_query("Q(x) <- NP(x)")
        assert answers_on(query, sentence_tree) == frozenset({(1,), (6,)})
