"""Edge-case coverage for the XPath translator feeding the service front end.

The HTTP front end and ``cq-trees batch`` hand raw client strings to
:func:`repro.queries.xpath.xpath_to_cq` and surface
:class:`~repro.queries.xpath.XPathTranslationError` messages verbatim, so the
messages themselves are part of the contract -- the tests below assert them,
not just the exception type.
"""

from __future__ import annotations

import pytest

from repro.evaluation import evaluate_on_tree
from repro.queries import parse_query, xpath_to_cq
from repro.queries.xpath import XPathTranslationError
from repro.trees import from_nested
from repro.trees.axes import Axis


class TestMultiStepPredicates:
    def test_predicate_with_a_two_step_path(self):
        query = xpath_to_cq("//A[B/C]")
        rendered = str(query)
        assert "B(" in rendered and "C(" in rendered
        # The predicate chain hangs off the selected variable: A -> B -> C.
        atoms = query.axis_atoms()
        assert [atom.axis for atom in atoms] == [
            Axis.CHILD_STAR,
            Axis.CHILD,
            Axis.CHILD,
        ]

    def test_predicate_with_descendant_step(self):
        query = xpath_to_cq("//A[B//C]")
        assert Axis.CHILD_STAR in {atom.axis for atom in query.axis_atoms()[1:]}

    def test_multi_step_predicate_selects_correctly(self, sentence_tree):
        # //NP[VB] selects nothing, //VP[NP/NN] selects the VP (node 4).
        assert evaluate_on_tree(xpath_to_cq("//NP[VB]"), sentence_tree) == frozenset()
        assert evaluate_on_tree(xpath_to_cq("//VP[NP/NN]"), sentence_tree) == frozenset(
            {(4,)}
        )

    def test_stacked_predicates_anchor_at_the_same_step(self):
        tree = from_nested(("R", [("A", [("B", []), ("C", [])]), ("A", [("B", [])])]))
        # Both predicates constrain the same A node.
        assert evaluate_on_tree(xpath_to_cq("//A[B][C]"), tree) == frozenset({(1,)})

    def test_relative_dot_predicate(self):
        query = xpath_to_cq("//A[.//B]")
        assert Axis.SELF in {atom.axis for atom in query.axis_atoms()}


class TestLeadingDoubleSlash:
    def test_double_slash_at_start_selects_root_matches_too(self):
        tree = from_nested(("S", [("S", []), ("A", [])]))
        assert evaluate_on_tree(xpath_to_cq("//S"), tree) == frozenset({(0,), (1,)})

    def test_double_slash_with_axis_step_keeps_the_hop(self):
        # `//following-sibling::B` must anchor the first step below some
        # context node rather than treating it like a child abbreviation.
        query = xpath_to_cq("//following-sibling::B")
        axes = [atom.axis for atom in query.axis_atoms()]
        assert axes[0] == Axis.CHILD_STAR
        assert Axis.NEXT_SIBLING_PLUS in axes

    def test_double_slash_mid_path(self, sentence_tree):
        assert evaluate_on_tree(xpath_to_cq("//S//NN"), sentence_tree) == frozenset(
            {(3,), (7,)}
        )

    def test_equivalent_to_datalog_twin(self, sentence_tree):
        from_xpath = evaluate_on_tree(xpath_to_cq("//NP[NN]"), sentence_tree)
        twin = parse_query("Q(n) <- Child*(c, n), NP(n), Child(n, m), NN(m)")
        assert from_xpath == evaluate_on_tree(twin, sentence_tree)


class TestTranslationErrorMessages:
    def test_unknown_axis_names_the_axis(self):
        with pytest.raises(XPathTranslationError, match="unsupported XPath axis: 'foo'"):
            xpath_to_cq("foo::A")

    def test_unknown_axis_inside_a_predicate(self):
        with pytest.raises(XPathTranslationError, match="unsupported XPath axis: 'bar'"):
            xpath_to_cq("following::A[bar::B]")

    def test_empty_expression(self):
        with pytest.raises(XPathTranslationError, match="empty XPath expression"):
            xpath_to_cq("   ")

    def test_unbalanced_predicate_brackets(self):
        with pytest.raises(
            XPathTranslationError, match="unbalanced predicate brackets in step 'A\\[B'"
        ):
            xpath_to_cq("A[B")

    def test_error_type_is_a_value_error(self):
        # The service maps ValueError subclasses to HTTP 400; keep that true.
        assert issubclass(XPathTranslationError, ValueError)
