"""Tests for the join lifters (Definition 6.2, Theorems 6.6 and 6.9)."""

from __future__ import annotations

import pytest

from repro.rewriting import (
    THEOREM_66_AXES,
    find_lifter_counterexample,
    lifter,
    paper_theorem_69_lifter,
    phi_holds,
)
from repro.rewriting.lifters import Conjunction, Equality, Lifter, LifterAtom
from repro.trees import Axis, all_trees, random_tree

#: All trees with up to 4 nodes over a 2-letter alphabet (102 trees) -- the
#: exhaustive universe for lifter verification; plus a few larger random trees
#: to catch deeper-tree-only issues.
SMALL_TREES = list(all_trees(4, ("A", "B")))
LARGER_TREES = [random_tree(12, alphabet=("A", "B"), seed=s) for s in range(3)]

AXES_66 = sorted(THEOREM_66_AXES, key=lambda a: a.value)


class TestLifterStructure:
    def test_syntactic_shape_of_definition_62(self):
        """Every conjunction has at most two binary atoms and at most one equality."""
        for r in AXES_66:
            for s in AXES_66:
                candidate = lifter(r, s)
                assert candidate.r is r and candidate.s is s
                for conjunction in candidate.conjunctions:
                    assert 1 <= len(conjunction.atoms) <= 2
                    binary_count = len(conjunction.atoms)
                    equality_count = 1 if conjunction.equality is not None else 0
                    assert binary_count + equality_count == 2
                    for atom in conjunction.atoms:
                        assert atom.source in ("x", "y", "z")
                        assert atom.target in ("x", "y", "z")

    def test_at_most_three_conjunctions(self):
        """The proof of Lemma 6.5 notes k <= 3 for the lifters of this article."""
        for r in AXES_66:
            for s in AXES_66:
                assert len(lifter(r, s).conjunctions) <= 3

    def test_rejects_following(self):
        with pytest.raises(ValueError):
            lifter(Axis.FOLLOWING, Axis.CHILD)
        with pytest.raises(ValueError):
            lifter(Axis.CHILD, Axis.FOLLOWING)

    def test_example_63_child_nextsibling(self):
        """Example 6.3: psi_{Child,NextSibling}(x,y,z) = Child(x,y) & NextSibling(y,z).

        Our table realises it via the swapped sibling/child row, which is a
        different but equivalent formula; check the equivalence explicitly.
        """
        example = Lifter(
            Axis.CHILD,
            Axis.NEXT_SIBLING,
            (
                Conjunction(
                    (
                        LifterAtom(Axis.CHILD, "x", "y"),
                        LifterAtom(Axis.NEXT_SIBLING, "y", "z"),
                    ),
                    None,
                ),
            ),
        )
        assert find_lifter_counterexample(example, SMALL_TREES) is None

    def test_str_rendering(self):
        text = str(lifter(Axis.CHILD, Axis.CHILD))
        assert "psi_{Child,Child}" in text
        assert "x = y" in text


class TestTheorem66Verification:
    @pytest.mark.parametrize("r", AXES_66, ids=lambda a: a.value)
    @pytest.mark.parametrize("s", AXES_66, ids=lambda a: a.value)
    def test_lifter_equivalent_on_all_small_trees(self, r, s):
        assert find_lifter_counterexample(lifter(r, s), SMALL_TREES) is None

    @pytest.mark.parametrize("r", AXES_66, ids=lambda a: a.value)
    def test_lifter_equivalent_on_larger_random_trees(self, r):
        for s in AXES_66:
            assert find_lifter_counterexample(lifter(r, s), LARGER_TREES) is None

    def test_phi_holds_matches_axis_semantics(self, sentence_tree):
        assert phi_holds(sentence_tree, Axis.CHILD, Axis.CHILD_PLUS, 1, 0, 3)
        assert not phi_holds(sentence_tree, Axis.CHILD, Axis.CHILD_PLUS, 1, 4, 3)


class TestTheorem69Transcription:
    """The printed Theorem 6.9 formulas, transcribed literally and verified.

    Under the Eq. (1) semantics of Following, the formulas for R in
    {Child, NextSibling, NextSibling+, NextSibling*} miss the case where y lies
    strictly inside a subtree that precedes z, so they are not join lifters;
    psi_{Following,Following} misses the ancestor/descendant cases as well.
    This is reported as a reproduction discrepancy (EXPERIMENTS.md) -- the
    default pipeline never uses them.
    """

    @pytest.mark.parametrize(
        "axis",
        [Axis.CHILD, Axis.NEXT_SIBLING, Axis.NEXT_SIBLING_PLUS, Axis.NEXT_SIBLING_STAR,
         Axis.FOLLOWING],
        ids=lambda a: a.value,
    )
    def test_printed_formulas_have_counterexamples(self, axis):
        candidate = paper_theorem_69_lifter(axis)
        assert find_lifter_counterexample(candidate, SMALL_TREES) is not None

    def test_counterexample_is_a_real_disagreement(self):
        candidate = paper_theorem_69_lifter(Axis.NEXT_SIBLING)
        found = find_lifter_counterexample(candidate, SMALL_TREES)
        assert found is not None
        tree, x, y, z = found
        assert candidate.holds_on(tree, x, y, z) != phi_holds(
            tree, candidate.r, candidate.s, x, y, z
        )

    def test_undefined_axis_rejected(self):
        with pytest.raises(ValueError):
            paper_theorem_69_lifter(Axis.CHILD_PLUS)


class TestConjunctionEvaluation:
    def test_holds_on_with_equality(self, sentence_tree):
        conjunction = Conjunction(
            (LifterAtom(Axis.CHILD, "x", "z"),), Equality("x", "y")
        )
        assert conjunction.holds_on(sentence_tree, {"x": 0, "y": 0, "z": 1})
        assert not conjunction.holds_on(sentence_tree, {"x": 0, "y": 4, "z": 1})
        assert not conjunction.holds_on(sentence_tree, {"x": 0, "y": 0, "z": 3})
        assert "x = y" in str(conjunction)
