"""Tests for directed-cycle elimination (Lemma 6.4) and the CQ -> APQ rewriting."""

from __future__ import annotations

import pytest

from repro.hardness import random_cyclic_query
from repro.queries import (
    equivalent_on_samples,
    equivalent_on_trees,
    is_acyclic,
    parse_query,
)
from repro.rewriting import (
    RewriteTrace,
    eliminate_directed_cycles,
    eliminate_following,
    expand_child_star,
    is_trivially_unsatisfiable,
    rewrite_child_nextsibling,
    rewrite_child_nextsibling_apq,
    to_apq,
    to_apq_theorem_610,
)
from repro.trees import Axis


class TestLemma64DirectedCycles:
    def test_reflexive_cycle_collapses(self):
        query = parse_query("Q(x) <- Child*(x, y), Child*(y, x), A(x), B(y)")
        rewritten = eliminate_directed_cycles(query)
        assert rewritten is not None
        assert len(rewritten.variables()) == 1
        assert rewritten.labels() == {"A", "B"}
        assert rewritten.head == ("x",)

    def test_irreflexive_cycle_is_unsatisfiable(self):
        assert eliminate_directed_cycles(parse_query("Q <- Child+(x, y), Child+(y, x)")) is None
        assert eliminate_directed_cycles(parse_query("Q <- Child+(x, x)")) is None
        assert eliminate_directed_cycles(
            parse_query("Q <- Child*(x, y), Following(y, x)")
        ) is None
        assert is_trivially_unsatisfiable(parse_query("Q <- NextSibling(x, x)"))

    def test_mixed_star_cycle(self):
        query = parse_query("Q <- Child*(x, y), NextSibling*(y, z), Child*(z, x), A(x)")
        rewritten = eliminate_directed_cycles(query)
        assert rewritten is not None
        assert len(rewritten.variables()) == 1

    def test_head_variable_kept_safe(self):
        query = parse_query("Q(x) <- Child*(x, y), Child*(y, x)")
        rewritten = eliminate_directed_cycles(query)
        assert rewritten is not None
        assert rewritten.head[0] in {
            variable for atom in rewritten.body for variable in atom.variables()
        }

    def test_acyclic_query_unchanged(self):
        query = parse_query("Q <- Child(x, y), Child(y, z)")
        assert eliminate_directed_cycles(query) == query

    def test_semantics_preserved(self):
        query = parse_query("Q(x) <- Child*(x, y), Child*(y, x), A(x)")
        rewritten = eliminate_directed_cycles(query)
        assert rewritten is not None
        assert equivalent_on_trees(query, rewritten, max_size=3) is None


class TestEliminateFollowing:
    def test_following_replaced_by_eq1(self):
        query = parse_query("Q <- A(x), Following(x, y), B(y)")
        rewritten = eliminate_following(query)
        assert Axis.FOLLOWING not in rewritten.signature()
        assert Axis.CHILD_STAR in rewritten.signature()
        assert Axis.NEXT_SIBLING_PLUS in rewritten.signature()
        assert equivalent_on_trees(query, rewritten, max_size=4) is None

    def test_no_following_is_identity(self):
        query = parse_query("Q <- Child(x, y)")
        assert eliminate_following(query) == query


class TestExpandChildStar:
    def test_expansion_count_and_equivalence(self):
        query = parse_query("Q(x, y) <- Child*(x, y), A(x)")
        expanded = expand_child_star(query)
        assert len(expanded) == 2
        from repro.queries import UnionQuery

        union = UnionQuery(tuple(expanded), "expanded")
        assert equivalent_on_trees(query, union, max_size=3) is None

    def test_self_loop_star(self):
        query = parse_query("Q(x) <- Child*(x, x), A(x)")
        expanded = expand_child_star(query)
        assert len(expanded) == 2
        # One of the two drops the atom entirely (the "=" branch).
        assert any(Axis.CHILD_STAR not in q.signature() and Axis.CHILD_PLUS not in q.signature()
                   for q in expanded)


class TestToApq:
    def test_example_67(self):
        """Example 6.7: Child*(x,y) & NextSibling*(x,y) collapses to Node(x)."""
        query = parse_query("Q(x, y) <- Child*(x, y), NextSibling*(x, y)")
        apq = to_apq(query)
        assert len(apq) == 1
        only = apq.disjuncts[0]
        assert only.head == ("x", "x")
        assert is_acyclic(only)
        assert equivalent_on_trees(query, apq, max_size=4) is None

    def test_intro_query_figure8(self):
        query = parse_query(
            "Q(z) <- S(x), Child+(x, y), NP(y), Child+(x, z), PP(z), Following(y, z)"
        )
        trace = RewriteTrace()
        apq = to_apq(query, trace=trace)
        assert apq.is_acyclic()
        assert len(apq) >= 1
        assert len(trace) > 0
        assert any(step.operation == "eliminate-following" for step in trace.steps)
        assert any(step.operation == "apply-lifter" for step in trace.steps)
        assert (
            equivalent_on_samples(
                query, apq, samples=8, size=14, alphabet=("S", "NP", "PP"), seed=1
            )
            is None
        )

    def test_unsatisfiable_query_gives_empty_union(self):
        query = parse_query("Q <- Child+(x, y), Child+(y, x)")
        apq = to_apq(query)
        assert apq.is_empty()

    def test_acyclic_query_passes_through(self):
        query = parse_query("Q(y) <- A(x), Child(x, y)")
        apq = to_apq(query)
        assert len(apq) == 1
        assert frozenset(apq.disjuncts[0].body) == frozenset(query.body)

    def test_parallel_edges(self):
        query = parse_query("Q(x, y) <- Child+(x, y), Child(x, y)")
        apq = to_apq(query)
        assert apq.is_acyclic()
        assert equivalent_on_trees(query, apq, max_size=4) is None

    def test_diamond_query(self):
        query = parse_query(
            "Q <- A(a), Child+(a, b), B(b), Child+(a, c), C(c), Child+(b, d), Child+(c, d), D(d)"
        )
        apq = to_apq(query)
        assert apq.is_acyclic()
        assert (
            equivalent_on_samples(
                query, apq, samples=10, size=14, alphabet=("A", "B", "C", "D"), seed=2
            )
            is None
        )

    def test_theorem_66_families_on_random_cyclic_queries(self):
        """CQ[F] ⊆ APQ[F'] checked empirically for the main signature families."""
        families = [
            (Axis.CHILD, Axis.CHILD_PLUS),
            (Axis.CHILD, Axis.CHILD_STAR),
            (Axis.CHILD_STAR, Axis.NEXT_SIBLING_PLUS),
            (Axis.CHILD_PLUS, Axis.NEXT_SIBLING),
            (Axis.NEXT_SIBLING_STAR, Axis.CHILD_PLUS),
        ]
        for index, axes in enumerate(families):
            query = random_cyclic_query(
                axes, num_variables=4, num_extra_atoms=1, alphabet=("A", "B"), seed=index
            )
            apq = to_apq(query)
            assert apq.is_acyclic()
            assert equivalent_on_trees(query, apq, max_size=3) is None
            assert (
                equivalent_on_samples(query, apq, samples=6, size=12, seed=index) is None
            )

    def test_following_signatures_via_theorem_610_route(self):
        for index, axes in enumerate(
            [(Axis.CHILD, Axis.FOLLOWING), (Axis.FOLLOWING, Axis.NEXT_SIBLING)]
        ):
            query = random_cyclic_query(
                axes, num_variables=4, num_extra_atoms=0, alphabet=("A", "B"), seed=10 + index
            )
            apq = to_apq(query)
            assert apq.is_acyclic()
            assert equivalent_on_trees(query, apq, max_size=3) is None

    def test_output_signature_theorem_66(self):
        """For F without Following, the output only uses F (plus Child+ when
        Child* interacts with sibling axes) -- Theorem 6.6's signature claim."""
        query = parse_query("Q <- Child+(x, z), Child+(y, z), Child+(x, y)")
        apq = to_apq(query)
        assert apq.signature().axes <= {Axis.CHILD_PLUS}

    def test_head_variables_survive(self):
        query = parse_query("Q(z) <- Child+(x, z), Child*(y, z), A(x), B(y)")
        apq = to_apq(query)
        for disjunct in apq:
            assert len(disjunct.head) == 1
        assert equivalent_on_trees(query, apq, max_size=3) is None

    def test_budget_guard(self):
        from repro.rewriting import RewriteBudgetExceeded
        from repro.succinctness import diamond_query

        with pytest.raises(RewriteBudgetExceeded):
            to_apq(diamond_query(4), max_disjuncts=5)

    def test_rejects_unsupported_axes(self):
        query = parse_query("Q(x) <- Parent(x, y)")
        with pytest.raises(ValueError):
            to_apq(query)

    def test_theorem_610_variant_equivalent(self):
        query = parse_query(
            "Q <- A(x), Child*(x, z), B(y), Child*(y, z), C(z)"
        )
        apq_default = to_apq(query)
        apq_610 = to_apq_theorem_610(query)
        assert apq_610.is_acyclic()
        # No Child* in the 6.10 output.
        assert Axis.CHILD_STAR not in apq_610.signature()
        assert equivalent_on_trees(apq_default, apq_610, max_size=3) is None
        assert equivalent_on_trees(query, apq_610, max_size=3) is None


class TestProposition614:
    def test_simple_cyclic_child_nextsibling(self):
        query = parse_query("Q <- Child(x, y), Child(x, z), NextSibling(y, z)")
        rewritten = rewrite_child_nextsibling(query)
        assert rewritten is not None
        assert is_acyclic(rewritten)
        assert equivalent_on_trees(query, rewritten, max_size=4) is None

    def test_forced_merges(self):
        query = parse_query("Q <- Child(x, z), Child(y, z), A(x), B(y)")
        rewritten = rewrite_child_nextsibling(query)
        assert rewritten is not None
        assert len(rewritten.variables()) == 2  # x and y merged

    def test_unsatisfiable_inputs(self):
        assert rewrite_child_nextsibling(parse_query("Q <- Child(x, x)")) is None
        assert rewrite_child_nextsibling(
            parse_query("Q <- NextSibling(x, y), NextSibling(y, x)")
        ) is None
        assert rewrite_child_nextsibling_apq(parse_query("Q <- Child(x, x)")).is_empty()

    def test_rejects_other_axes(self):
        with pytest.raises(ValueError):
            rewrite_child_nextsibling(parse_query("Q <- Child+(x, y)"))

    def test_random_queries_preserve_semantics(self):
        for seed in range(6):
            query = random_cyclic_query(
                (Axis.CHILD, Axis.NEXT_SIBLING),
                num_variables=4,
                num_extra_atoms=1,
                alphabet=("A", "B"),
                seed=seed,
            )
            apq = rewrite_child_nextsibling_apq(query)
            assert apq.is_acyclic()
            assert equivalent_on_trees(query, apq, max_size=3) is None
            assert equivalent_on_samples(query, apq, samples=6, size=12, seed=seed) is None

    def test_output_size_is_linear(self):
        """Proposition 6.14 promises no blow-up: the output has one disjunct
        and at most as many atoms as the input."""
        for seed in range(6):
            query = random_cyclic_query(
                (Axis.CHILD, Axis.NEXT_SIBLING),
                num_variables=5,
                num_extra_atoms=2,
                alphabet=("A",),
                seed=100 + seed,
            )
            apq = rewrite_child_nextsibling_apq(query)
            assert len(apq) <= 1
            assert apq.size() <= query.size()
