"""Tests for the serving layer: document store, query cache, batch executor."""

from __future__ import annotations

import json

import pytest

from repro.evaluation import Propagator, compile_query, evaluate
from repro.queries import parse_query, xpath_to_cq
from repro.service import (
    BatchExecutor,
    DocumentNotFound,
    DocumentStore,
    QueryCache,
    Request,
)
from repro.trees import TreeStructure, XMLParseError, random_tree
from repro.workloads import auction_document, items_with_payment_query


# ---------------------------------------------------------------------------
# DocumentStore.
# ---------------------------------------------------------------------------


class TestDocumentStore:
    def test_register_and_get_keeps_artifacts_resident(self, sentence_tree):
        store = DocumentStore()
        document = store.register_tree("doc", sentence_tree)
        assert store.get("doc") is document
        # The interval index was forced at registration and is shared.
        assert document.structure.index is sentence_tree.index
        # Label sets are warm: repeated lookups hand back the same frozenset.
        first = document.structure.unary_member_set("NP")
        assert first == frozenset({1, 6})
        assert document.structure.unary_member_set("NP") is first

    def test_register_xml_sexpr_and_file(self, tmp_path):
        store = DocumentStore()
        xml = "<site><item><payment/></item></site>"
        assert store.register_xml("x", xml).nodes == 3
        assert store.register_sexpr("s", "(A (B) (C))").nodes == 3
        path = tmp_path / "doc.xml"
        path.write_text(xml, encoding="utf-8")
        assert store.register_xml_file("f", str(path)).nodes == 3
        assert sorted(store.doc_ids()) == ["f", "s", "x"]

    def test_bad_xml_raises_clean_error(self):
        store = DocumentStore()
        with pytest.raises(XMLParseError, match="not well-formed"):
            store.register_xml("bad", "<open><unclosed></open>")
        assert "bad" not in store

    def test_unknown_doc_raises(self):
        store = DocumentStore()
        with pytest.raises(DocumentNotFound, match="unknown document id 'missing'"):
            store.get("missing")

    def test_explicit_eviction_and_clear(self, sentence_tree):
        store = DocumentStore()
        store.register_tree("a", sentence_tree)
        store.register_tree("b", sentence_tree)
        assert store.evict("a")
        assert not store.evict("a")
        assert len(store) == 1
        store.clear()
        assert len(store) == 0
        assert store.stats()["evicted"] == 2

    def test_lru_capacity_eviction(self, sentence_tree):
        store = DocumentStore(capacity=2)
        store.register_tree("a", sentence_tree)
        store.register_tree("b", sentence_tree)
        store.get("a")  # touch: now b is least recently used
        store.register_tree("c", sentence_tree)
        assert sorted(store.doc_ids()) == ["a", "c"]
        assert store.stats()["evicted"] == 1

    def test_reregistration_replaces(self, sentence_tree):
        store = DocumentStore()
        store.register_tree("doc", sentence_tree)
        bigger = random_tree(50, seed=1)
        store.register_tree("doc", bigger)
        assert store.get("doc").tree is bigger
        assert len(store) == 1


# ---------------------------------------------------------------------------
# QueryCache.
# ---------------------------------------------------------------------------


class TestQueryCache:
    def test_textual_resubmission_hits_parse_cache(self):
        cache = QueryCache()
        first, hit_first = cache.resolve_text("Q(x) <- A(x), Child(x, y), B(y)")
        second, hit_second = cache.resolve_text("Q(x) <- A(x), Child(x, y), B(y)")
        assert first is second
        assert not hit_first and hit_second
        assert cache.stats()["parse_hits"] == 1

    def test_alpha_equivalent_texts_share_one_entry(self):
        cache = QueryCache()
        first, _ = cache.resolve_text("Q(x) <- A(x), Child(x, y), B(y)")
        second, hit = cache.resolve_text("Other(n) <- B(m), A(n), Child(n, m)")
        assert hit
        assert first is second
        assert cache.stats() == cache.stats()  # stable snapshot
        assert len(cache) == 1

    def test_compile_lru_hit_across_equivalent_queries(self):
        cache = QueryCache()
        entry, _ = cache.resolve_query(parse_query("Q(x) <- A(x), Child+(x, y)"))
        # A fresh, renamed query still lands on the identical compiled object.
        renamed = parse_query("R(u) <- Child+(u, w), A(u)")
        assert compile_query(cache.entry_for_query(renamed).query) is entry.compiled

    def test_mixed_xpath_and_datalog_share_entries(self):
        cache = QueryCache()
        from_xpath, _ = cache.resolve_text("//A[B]", kind="xpath")
        twin = "Q(sel) <- Child*(start, sel), A(sel), Child(sel, b), B(b)"
        from_datalog, hit = cache.resolve_text(twin)
        assert hit
        assert from_xpath is from_datalog

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown query kind"):
            QueryCache().resolve_text("Q <- A(x)", kind="sql")

    def test_parse_errors_propagate_and_are_not_cached(self):
        cache = QueryCache()
        for _ in range(2):
            with pytest.raises(Exception):
                cache.resolve_text("((broken")
        assert len(cache) == 0
        assert cache.stats()["parse_entries"] == 0

    def test_capacity_bounds_entries(self):
        cache = QueryCache(capacity=2)
        cache.resolve_text("Q <- A(x)")
        cache.resolve_text("Q <- B(x)")
        cache.resolve_text("Q <- C(x)")
        assert len(cache) == 2

    def test_parse_cache_hits_keep_the_entry_hot_in_the_lru(self):
        cache = QueryCache(capacity=2)
        hot, _ = cache.resolve_text("Q <- A(x)")
        cache.resolve_text("Q <- B(x)")
        # Textual resubmissions of the hot query go through the parse cache;
        # they must still refresh the entry's LRU position.
        cache.resolve_text("Q <- A(x)")
        cache.resolve_text("Q <- C(x)")  # evicts B, not the hot A
        entry, hit = cache.resolve_query(parse_query("Q <- A(y)"))
        assert hit and entry is hot

    def test_parse_cache_hit_readmits_evicted_entry(self):
        """Regression: a parse-cache hit on an LRU-evicted entry must re-admit
        it, or the capacity bound is silently violated and ``describe()`` /
        ``stats()`` disagree with what is actually served."""
        cache = QueryCache(capacity=2)
        entry_a, _ = cache.resolve_text("Q <- A(x)")
        # Object-form resolves push A out of the entry LRU while its
        # parse-cache pointer stays alive.
        cache.resolve_query(parse_query("Q <- B(x)"))
        cache.resolve_query(parse_query("Q <- C(x)"))
        assert entry_a.key not in [entry["key"] for entry in cache.describe()]
        served, hit = cache.resolve_text("Q <- A(x)")
        assert hit and served is entry_a
        keys = [entry["key"] for entry in cache.describe()]
        assert entry_a.key in keys  # re-admitted: describe() agrees with serving
        assert len(cache) <= 2  # the capacity bound still holds
        assert cache.stats()["entries"] <= 2

    def test_stats_track_hits_and_misses(self):
        cache = QueryCache()
        cache.resolve_text("Q <- A(x)")
        cache.resolve_text("Q <- A(x)")
        cache.resolve_text("Q <- B(x)")
        stats = cache.stats()
        assert stats["misses"] == 2
        assert stats["hits"] == 1
        assert 0.0 < stats["hit_rate"] < 1.0


# ---------------------------------------------------------------------------
# BatchExecutor.
# ---------------------------------------------------------------------------


@pytest.fixture
def executor(sentence_tree):
    ex = BatchExecutor()
    ex.store.register_tree("sentence", sentence_tree)
    ex.store.register_tree("auction", auction_document(num_items=8, seed=3))
    return ex


class TestBatchExecutor:
    def test_single_request_matches_direct_evaluate(self, executor, sentence_tree):
        result = executor.execute(
            Request(doc="sentence", query="Q(x) <- NP(x), Child(x, y), NN(y)")
        )
        assert result.ok
        direct = sorted(
            evaluate(
                parse_query("Q(x) <- NP(x), Child(x, y), NN(y)"),
                TreeStructure(sentence_tree),
            )
        )
        assert result.answers == direct
        assert result.count == len(direct)

    def test_batch_results_identical_to_sequential_across_propagators(self, executor):
        auction_tree = executor.store.get("auction").tree
        fresh = TreeStructure(auction_tree)
        requests = [
            Request(
                doc="auction",
                query="Q(i) <- item(i), Child(i, p), payment(p)",
                propagator=propagator.value,
            )
            for propagator in Propagator
        ] + [
            Request(doc="auction", xpath="//description//listitem",
                    propagator=propagator.value)
            for propagator in Propagator
        ]
        results = executor.execute_batch(requests, max_workers=4)
        for request, result in zip(requests, results):
            assert result.ok
            query = (
                parse_query(request.query)
                if request.query is not None
                else xpath_to_cq(request.xpath)
            )
            direct = sorted(evaluate(query, fresh, propagator=request.propagator))
            # Byte-identical through the JSON rendering.
            assert json.dumps(result.to_json_dict()["answers"]) == json.dumps(
                [list(answer) for answer in direct]
            )

    def test_batch_preserves_request_order_and_is_deterministic(self, executor):
        requests = [
            Request(doc="sentence", query=f"Q(x) <- {label}(x)")
            for label in ("NP", "VP", "NN", "DT", "PP", "S", "VB")
        ]
        concurrent = executor.execute_batch(requests, max_workers=4)
        sequential = executor.execute_batch(requests, max_workers=1)
        assert [r.answers for r in concurrent] == [r.answers for r in sequential]
        assert [r.doc for r in concurrent] == [r.doc for r in requests]

    def test_errors_are_per_request_not_batch_aborts(self, executor):
        results = executor.execute_batch(
            [
                Request(doc="sentence", query="Q(x) <- NP(x)"),
                Request(doc="missing", query="Q(x) <- NP(x)"),
                Request(doc="sentence", query="(((nope"),
                Request(doc="sentence", query="Q <- NP(x)", propagator="warp-drive"),
                Request(doc="sentence"),  # neither query nor xpath
            ]
        )
        assert results[0].ok
        assert "unknown document" in results[1].error
        assert not results[2].ok
        assert "unknown propagator" in results[3].error
        assert "exactly one of" in results[4].error
        assert executor.stats()["executor"]["errors"] == 4

    def test_limit_truncates_after_sorting(self, executor):
        full = executor.execute(Request(doc="sentence", query="Q(x) <- Child+(x, y)"))
        assert full.count > 2
        limited = executor.execute(
            Request(doc="sentence", query="Q(x) <- Child+(x, y)", limit=2)
        )
        assert limited.truncated
        assert limited.count == full.count
        assert limited.answers == full.answers[:2]

    def test_boolean_queries_report_satisfied(self, executor):
        yes = executor.execute(Request(doc="sentence", query="Q <- NP(x), Child(x, y), NN(y)"))
        no = executor.execute(Request(doc="sentence", query="Q <- PP(x), Child(x, y)"))
        assert yes.satisfied is True and yes.answers == [()]
        assert no.satisfied is False and no.answers == []

    def test_query_objects_are_accepted(self, executor):
        query = items_with_payment_query()
        result = executor.execute(Request(doc="auction", query=query))
        assert result.ok
        direct = sorted(
            evaluate(query, TreeStructure(executor.store.get("auction").tree))
        )
        assert result.answers == direct

    def test_non_string_payloads_stay_per_request_errors(self, executor):
        """Type-confused fields must not escape the per-request error envelope."""
        results = executor.execute_batch(
            [
                Request(doc="sentence", xpath=123),  # type: ignore[arg-type]
                Request(doc="sentence", query="Q(x) <- NP(x)"),
            ]
        )
        assert "'xpath' must be a string" in results[0].error
        assert results[1].ok  # the batch survived
        with pytest.raises(ValueError, match="'xpath' must be a string"):
            Request.from_json_dict({"doc": "d", "xpath": 123})
        with pytest.raises(ValueError, match="'query' must be a string"):
            Request.from_json_dict({"doc": "d", "query": ["Q"]})
        with pytest.raises(ValueError, match="'propagator' must be a string"):
            Request.from_json_dict({"doc": "d", "query": "Q <- A(x)", "propagator": 4})

    def test_register_payload_validation(self, sentence_tree):
        store = DocumentStore()
        with pytest.raises(ValueError, match="non-empty 'doc'"):
            store.register_payload({"xml": "<a/>"})
        with pytest.raises(ValueError, match="exactly one of 'xml', 'sexpr'"):
            store.register_payload({"doc": "d"})
        with pytest.raises(ValueError, match="'xml' must be a string"):
            store.register_payload({"doc": "d", "xml": 123})
        # File registration only with allow_files (the CLI trust domain).
        with pytest.raises(ValueError, match="exactly one of 'xml', 'sexpr'"):
            store.register_payload({"doc": "d", "xml_file": "x.xml"})
        assert store.register_payload({"doc": "d", "sexpr": "(A (B))"}).nodes == 2

    def test_unknown_labels_are_not_memoized_on_resident_structures(self, executor):
        structure = executor.store.get("sentence").structure
        before = len(structure._unary_sets)
        for index in range(20):
            executor.execute(
                Request(doc="sentence", query=f"Q(x) <- made_up_label_{index}(x)")
            )
        assert len(structure._unary_sets) == before

    def test_persistent_pool_survives_batches_and_close(self, executor):
        requests = [Request(doc="sentence", query="Q(x) <- NP(x)")] * 4
        first = executor.execute_batch(requests)
        pool = executor._pool
        second = executor.execute_batch(requests)
        assert executor._pool is pool  # reused, not rebuilt per batch
        assert [r.answers for r in first] == [r.answers for r in second]
        executor.close()
        assert executor._pool is None
        # Still usable afterwards (pool lazily rebuilt).
        assert all(r.ok for r in executor.execute_batch(requests))
        executor.close()

    def test_request_from_json_dict_validation(self):
        with pytest.raises(ValueError, match="non-empty 'doc'"):
            Request.from_json_dict({"query": "Q <- A(x)"})
        with pytest.raises(ValueError, match="unknown request field"):
            Request.from_json_dict({"doc": "d", "query": "Q <- A(x)", "bogus": 1})
        with pytest.raises(ValueError, match="'limit'"):
            Request.from_json_dict({"doc": "d", "query": "Q <- A(x)", "limit": -1})
        request = Request.from_json_dict(
            {"doc": "d", "xpath": "//A", "propagator": "hybrid", "limit": 5}
        )
        assert request.xpath == "//A" and request.limit == 5

    def test_warm_requests_hit_the_caches(self, executor):
        request = Request(doc="sentence", query="Q(x) <- NP(x)")
        executor.execute(request)
        warm = executor.execute(request)
        assert warm.cache_hit
        assert executor.stats()["cache"]["parse_hits"] >= 1
        assert executor.stats()["store"]["hits"] >= 2


# ---------------------------------------------------------------------------
# Serving-contract fixes (regression tests).
# ---------------------------------------------------------------------------


class TestContractFixes:
    def test_internal_crash_stays_per_request_not_batch_abort(self, executor, monkeypatch):
        """Regression: a non-client exception inside ``execute`` used to
        escape ``pool.map`` and void the whole batch; it must come back as an
        ``internal:`` error value while the batchmates stay alive."""
        import repro.service.core as core

        real_evaluate = core.evaluate
        poisoned = executor.store.get("auction").structure

        def crashing_evaluate(query, structure, **kwargs):
            if structure is poisoned:
                raise RuntimeError("kaboom")
            return real_evaluate(query, structure, **kwargs)

        monkeypatch.setattr(core, "evaluate", crashing_evaluate)
        errors_before = executor.stats()["executor"]["errors"]
        # max_workers=2 forces the dedicated-pool map path the bug lived in.
        results = executor.execute_batch(
            [
                Request(doc="sentence", query="Q(x) <- NP(x)"),
                Request(doc="auction", query="Q(i) <- item(i)"),
                Request(doc="sentence", query="Q(x) <- NN(x)"),
            ],
            max_workers=2,
        )
        assert results[0].ok and results[2].ok  # batchmates survived
        assert results[1].error == "internal: RuntimeError: kaboom"
        assert executor.stats()["executor"]["errors"] == errors_before + 1
        # The shared-pool path must behave identically.
        shared = executor.execute_batch(
            [
                Request(doc="auction", query="Q(i) <- item(i)"),
                Request(doc="sentence", query="Q(x) <- NP(x)"),
            ]
        )
        assert shared[0].error.startswith("internal:") and shared[1].ok

    def test_error_results_keep_attribution_fields(self, executor):
        """Regression: the error path of ``to_json_dict`` dropped
        ``elapsed_ms`` and ``propagator``, making failures unattributable in
        latency accounting."""
        result = executor.execute(
            Request(doc="ghost", query="Q(x) <- A(x)", propagator="ac3")
        )
        payload = result.to_json_dict()
        assert not result.ok
        assert payload["propagator"] == "ac3"
        assert isinstance(payload["elapsed_ms"], float) and payload["elapsed_ms"] >= 0.0

    def test_bool_limit_is_rejected(self):
        """Regression: ``True`` passes ``isinstance(x, int)``, so
        ``{"limit": true}`` used to be accepted as ``limit=1``."""
        for value in (True, False):
            with pytest.raises(ValueError, match="non-negative integer"):
                Request.from_json_dict({"doc": "d", "query": "Q <- A(x)", "limit": value})
        # Plain integers still pass.
        assert Request.from_json_dict({"doc": "d", "query": "Q <- A(x)", "limit": 1}).limit == 1
        assert Request.from_json_dict({"doc": "d", "query": "Q <- A(x)", "limit": 0}).limit == 0
