"""Tests for the HTTP JSON front end (in-process server on an ephemeral port)."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.evaluation import evaluate
from repro.queries import parse_query
from repro.service import BatchExecutor, make_server
from repro.trees import TreeStructure, to_xml
from repro.workloads import auction_document


@pytest.fixture
def server():
    httpd = make_server(BatchExecutor(), host="127.0.0.1", port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        yield httpd
    finally:
        httpd.shutdown()
        httpd.server_close()
        thread.join(timeout=5)


def _call(server, method: str, path: str, payload=None):
    host, port = server.server_address[:2]
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


class TestServerRoundTrip:
    def test_healthz_and_stats(self, server):
        status, payload = _call(server, "GET", "/healthz")
        assert status == 200 and payload["status"] == "ok"
        status, payload = _call(server, "GET", "/stats")
        assert status == 200
        assert {"executor", "store", "cache"} <= set(payload)

    def test_register_query_batch_matches_direct_evaluate(self, server):
        auction = auction_document(num_items=10, seed=9)
        status, payload = _call(
            server, "POST", "/documents", {"doc": "auction", "xml": to_xml(auction)}
        )
        assert status == 200 and payload["doc"] == "auction"
        status, payload = _call(
            server,
            "POST",
            "/documents",
            {"doc": "sentence", "sexpr": "(S (NP (NN)) (VP (VB) (NP (NN))))"},
        )
        assert status == 200 and payload["nodes"] == 7

        batch = {
            "requests": [
                {"doc": "auction", "query": "Q(i) <- item(i), Child(i, p), payment(p)"},
                {"doc": "auction", "xpath": "//description//listitem", "propagator": "hybrid"},
                {"doc": "sentence", "xpath": "//NP[NN]"},
            ]
        }
        status, payload = _call(server, "POST", "/batch", batch)
        assert status == 200 and payload["errors"] == 0

        direct_auction = TreeStructure(auction)
        expected_first = sorted(
            evaluate(
                parse_query("Q(i) <- item(i), Child(i, p), payment(p)"), direct_auction
            )
        )
        assert payload["results"][0]["answers"] == [list(a) for a in expected_first]
        assert payload["results"][2]["count"] == 2

    def test_single_query_endpoint(self, server):
        _call(server, "POST", "/documents", {"doc": "d", "sexpr": "(A (B) (B))"})
        status, payload = _call(
            server, "POST", "/query", {"doc": "d", "query": "Q(x) <- B(x)"}
        )
        assert status == 200
        assert payload["answers"] == [[1], [2]]

    def test_document_listing_and_eviction(self, server):
        _call(server, "POST", "/documents", {"doc": "d", "sexpr": "(A)"})
        status, payload = _call(server, "GET", "/documents")
        assert status == 200 and payload["documents"][0]["doc"] == "d"
        status, payload = _call(server, "DELETE", "/documents/d")
        assert status == 200 and payload["evicted"] == "d"
        status, _ = _call(server, "DELETE", "/documents/d")
        assert status == 404

    def test_non_string_registration_values_answer_400(self, server):
        status, payload = _call(server, "POST", "/documents", {"doc": "d", "xml": 123})
        assert status == 400 and "'xml' must be a string" in payload["error"]
        # Server-side file paths are not a remote registration source.
        status, payload = _call(
            server, "POST", "/documents", {"doc": "d", "xml_file": "/etc/hostname"}
        )
        assert status == 400 and "exactly one of 'xml', 'sexpr'" in payload["error"]

    def test_error_statuses(self, server):
        # Bad XML -> 400 with the clean parse error.
        status, payload = _call(
            server, "POST", "/documents", {"doc": "bad", "xml": "<a><b></a>"}
        )
        assert status == 400 and "not well-formed" in payload["error"]
        # Unknown route -> 404.
        status, _ = _call(server, "GET", "/nope")
        assert status == 404
        # Malformed batch body -> 400.
        status, payload = _call(server, "POST", "/batch", {"nope": []})
        assert status == 400 and "requests" in payload["error"]
        # Unknown document in a single query -> 400 with the error field.
        status, payload = _call(
            server, "POST", "/query", {"doc": "ghost", "query": "Q <- A(x)"}
        )
        assert status == 400 and "unknown document" in payload["error"]

    def test_bool_limit_and_max_workers_rejected_over_http(self, server):
        """Regression: JSON ``true`` passes ``isinstance(x, int)``, so
        ``{"limit": true}`` / ``{"max_workers": true}`` used to be accepted
        as ``1``; both must answer 400."""
        _call(server, "POST", "/documents", {"doc": "d", "sexpr": "(A (B))"})
        status, payload = _call(
            server, "POST", "/query", {"doc": "d", "query": "Q(x) <- B(x)", "limit": True}
        )
        assert status == 400 and "non-negative integer" in payload["error"]
        status, payload = _call(
            server,
            "POST",
            "/batch",
            {"requests": [{"doc": "d", "query": "Q(x) <- B(x)"}], "max_workers": True},
        )
        assert status == 400 and "positive integer" in payload["error"]
        # A genuine integer limit still works end to end.
        status, payload = _call(
            server, "POST", "/query", {"doc": "d", "query": "Q(x) <- B(x)", "limit": 0}
        )
        assert status == 200 and payload["truncated"] and payload["answers"] == []

    def test_error_payloads_carry_latency_attribution(self, server):
        """Regression: error results dropped ``elapsed_ms``/``propagator``
        from the wire schema, so failures vanished from latency accounting."""
        status, payload = _call(
            server, "POST", "/query", {"doc": "ghost", "query": "Q <- A(x)", "propagator": "ac3"}
        )
        assert status == 400 and "unknown document" in payload["error"]
        assert payload["propagator"] == "ac3"
        assert isinstance(payload["elapsed_ms"], (int, float)) and payload["elapsed_ms"] >= 0
        status, payload = _call(
            server, "POST", "/batch", {"requests": [{"doc": "ghost", "query": "Q <- A(x)"}]}
        )
        assert status == 200
        result = payload["results"][0]
        # No explicit propagator and routing never resolved a plan: the
        # attribution honestly reports the unresolved "auto" default.
        assert "elapsed_ms" in result and result["propagator"] == "auto"

    def test_batch_errors_stay_per_request(self, server):
        _call(server, "POST", "/documents", {"doc": "d", "sexpr": "(A (B))"})
        status, payload = _call(
            server,
            "POST",
            "/batch",
            {
                "requests": [
                    {"doc": "d", "query": "Q(x) <- A(x)"},
                    {"doc": "ghost", "query": "Q(x) <- A(x)"},
                ]
            },
        )
        assert status == 200
        assert payload["errors"] == 1
        assert payload["results"][0]["count"] == 1
        assert "unknown document" in payload["results"][1]["error"]
