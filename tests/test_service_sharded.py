"""Tests for the process-sharded backend and the asyncio HTTP front end.

The serving contract must be indistinguishable across backends and front
ends: same routes, same payloads, same sorted answers, same per-request error
envelopes.  These tests drive the same workload through every combination and
assert byte-identity on the stable parts of the wire format.
"""

from __future__ import annotations

import http.client
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.evaluation import evaluate
from repro.queries import parse_query
from repro.service import (
    AsyncServerThread,
    BatchExecutor,
    Request,
    ShardedExecutor,
    make_server,
    shard_for,
)
from repro.trees import TreeStructure, to_xml
from repro.workloads import auction_document

SENTENCE_SEXPR = "(S (NP (DT) (NN)) (VP (VB) (NP (NN))) (PP))"


@pytest.fixture(scope="module")
def sharded():
    executor = ShardedExecutor(shards=2)
    try:
        yield executor
    finally:
        executor.close()


@pytest.fixture(scope="module")
def auction():
    return auction_document(num_items=10, seed=9)


def _register_workload(executor, auction) -> None:
    executor.register_payload({"doc": "auction", "xml": to_xml(auction)})
    executor.register_payload({"doc": "sentence", "sexpr": SENTENCE_SEXPR})


def _workload_requests() -> list[Request]:
    return [
        Request(doc="auction", query="Q(i) <- item(i), Child(i, p), payment(p)"),
        Request(doc="auction", xpath="//description//listitem", propagator="hybrid"),
        Request(doc="sentence", xpath="//NP[NN]"),
        Request(doc="sentence", query="Q(x) <- NP(x), Child(x, y), NN(y)", propagator="ac3"),
        Request(doc="ghost", query="Q(x) <- A(x)"),  # stays a per-request error
    ]


def _stable(payload: dict) -> dict:
    """A result payload minus the fields that legitimately vary per run."""
    return {k: v for k, v in payload.items() if k not in ("elapsed_ms", "cache_hit")}


# ---------------------------------------------------------------------------
# ShardedExecutor.
# ---------------------------------------------------------------------------


class TestShardedExecutor:
    def test_shard_for_is_stable_and_in_range(self):
        for shards in (1, 2, 3, 8):
            for doc_id in ("a", "auction", "sentence", "doc-42"):
                first = shard_for(doc_id, shards)
                assert first == shard_for(doc_id, shards)
                assert 0 <= first < shards
        # The routing is a content hash, not Python's salted hash():
        # pin one value so a silent change of the function breaks loudly.
        assert shard_for("auction", 2) == 1

    def test_round_trip_register_query_batch_evict_stats(self, sharded, auction):
        _register_workload(sharded, auction)
        assert sharded.document_count() == 2
        docs = {entry["doc"] for entry in sharded.describe_documents()}
        assert docs == {"auction", "sentence"}

        requests = _workload_requests()
        results = sharded.execute_batch(requests)
        assert [r.doc for r in results] == [r.doc for r in requests]
        assert all(r.ok for r in results[:4])
        assert "unknown document" in results[4].error

        # Answers are byte-identical to sequential evaluate() on a fresh tree.
        direct = sorted(
            evaluate(
                parse_query("Q(i) <- item(i), Child(i, p), payment(p)"),
                TreeStructure(auction),
            )
        )
        assert json.dumps(results[0].to_json_dict()["answers"]) == json.dumps(
            [list(a) for a in direct]
        )

        stats = sharded.stats()
        assert stats["executor"]["backend"] == "sharded"
        assert stats["executor"]["shards"] == 2
        assert stats["executor"]["requests"] >= len(requests)
        assert stats["executor"]["errors"] >= 1
        assert stats["store"]["documents"] == 2
        assert len(stats["shards"]) == 2
        # Documents really are spread by the routing hash.
        per_shard = [s["store"]["documents"] for s in stats["shards"]]
        assert sum(per_shard) == 2

        assert sharded.evict_document("sentence")
        assert not sharded.evict_document("sentence")
        assert sharded.document_count() == 1
        sharded.register_payload({"doc": "sentence", "sexpr": SENTENCE_SEXPR})

    def test_matches_threaded_backend_result_for_result(self, sharded, auction):
        _register_workload(sharded, auction)
        threaded = BatchExecutor()
        _register_workload(threaded, auction)
        requests = _workload_requests()
        sharded_results = sharded.execute_batch(requests)
        threaded_results = threaded.execute_batch(requests)
        for ours, theirs in zip(sharded_results, threaded_results):
            assert json.dumps(_stable(ours.to_json_dict())) == json.dumps(
                _stable(theirs.to_json_dict())
            )
        threaded.close()

    def test_registration_errors_travel_back_as_values(self, sharded):
        with pytest.raises(ValueError, match="not well-formed"):
            sharded.register_payload({"doc": "bad", "xml": "<a><b></a>"})
        with pytest.raises(ValueError, match="non-empty 'doc'"):
            sharded.register_payload({"xml": "<a/>"})
        # The worker survives the failed registration.
        assert sharded.document_count() >= 0

    def test_registration_error_message_matches_threaded_backend(self, sharded):
        """Client-fault errors must cross the process boundary verbatim, so
        both backends answer the identical message (and HTTP body)."""
        threaded = BatchExecutor()
        bad = {"doc": "bad", "xml": "<a><b></a>"}
        with pytest.raises(ValueError) as threaded_error:
            threaded.register_payload(bad)
        with pytest.raises(ValueError) as sharded_error:
            sharded.register_payload(bad)
        assert str(sharded_error.value) == str(threaded_error.value)
        threaded.close()

    def test_dead_worker_fails_requests_without_hanging_or_batch_abort(self):
        """A worker killed mid-flight (OOM, segfault) must fail its requests
        promptly -- per request, never a hang or a batch abort -- while the
        surviving shard keeps serving."""
        executor = ShardedExecutor(shards=2)
        try:
            executor.register_payload({"doc": "d", "sexpr": "(A (B))"})  # shard 0
            executor.register_payload({"doc": "a", "sexpr": "(A (B))"})  # shard 1
            executor._processes[0].terminate()
            executor._processes[0].join(timeout=10)
            results = executor.execute_batch(
                [
                    Request(doc="d", query="Q(x) <- B(x)"),
                    Request(doc="a", query="Q(x) <- B(x)"),
                ]
            )
            assert not results[0].ok
            assert results[0].error.startswith("internal:") and "shard 0" in results[0].error
            assert results[1].ok and results[1].answers == [(1,)]
            # Later dispatches to the broken shard fail fast, not silently.
            with pytest.raises(ValueError, match="shard 0 worker is not running"):
                executor.register_payload({"doc": "d", "sexpr": "(A)"})
        finally:
            executor.close()

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError, match="shards must be >= 1"):
            ShardedExecutor(shards=0)

    def test_close_is_idempotent_and_rejects_new_work(self):
        executor = ShardedExecutor(shards=1)
        executor.register_payload({"doc": "d", "sexpr": "(A (B))"})
        assert executor.execute(Request(doc="d", query="Q(x) <- B(x)")).answers == [(1,)]
        executor.close()
        executor.close()
        with pytest.raises(RuntimeError, match="closed"):
            executor.submit(Request(doc="d", query="Q(x) <- B(x)"))


# ---------------------------------------------------------------------------
# Async front end: threaded and sharded backends, vs the threaded server.
# ---------------------------------------------------------------------------


def _http(base: str, method: str, path: str, payload=None):
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(base + path, data=data, method=method)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


@pytest.fixture
def threaded_server():
    httpd = make_server(BatchExecutor(), host="127.0.0.1", port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    try:
        yield f"http://{host}:{port}"
    finally:
        httpd.shutdown()
        httpd.server_close()
        thread.join(timeout=5)


class TestAsyncFrontEnd:
    @pytest.mark.parametrize("backend_kind", ["threaded", "sharded"])
    def test_round_trip_byte_identical_with_threaded_server(
        self, backend_kind, threaded_server, auction
    ):
        backend = BatchExecutor() if backend_kind == "threaded" else ShardedExecutor(shards=2)
        try:
            with AsyncServerThread(backend) as handle:
                host, port = handle.address
                base = f"http://{host}:{port}"
                exchanges = [
                    ("GET", "/healthz", None),
                    ("POST", "/documents", {"doc": "auction", "xml": to_xml(auction)}),
                    ("POST", "/documents", {"doc": "sentence", "sexpr": SENTENCE_SEXPR}),
                    ("GET", "/healthz", None),
                    ("GET", "/documents", None),
                    ("POST", "/query",
                     {"doc": "auction", "query": "Q(i) <- item(i), Child(i, p), payment(p)"}),
                    ("POST", "/query", {"doc": "ghost", "query": "Q <- A(x)"}),
                    ("POST", "/batch", {"requests": [
                        {"doc": "auction", "xpath": "//description//listitem",
                         "propagator": "hybrid"},
                        {"doc": "sentence", "xpath": "//NP[NN]"},
                        {"doc": "ghost", "query": "Q <- A(x)"},
                    ]}),
                    ("DELETE", "/documents/sentence", None),
                    ("DELETE", "/documents/sentence", None),
                    ("GET", "/nope", None),
                ]
                for method, path, payload in exchanges:
                    async_status, async_body = _http(base, method, path, payload)
                    threaded_status, threaded_body = _http(threaded_server, method, path, payload)
                    assert async_status == threaded_status, (method, path)
                    stable_async = _strip_volatile(json.loads(async_body))
                    stable_threaded = _strip_volatile(json.loads(threaded_body))
                    assert json.dumps(stable_async) == json.dumps(stable_threaded), (method, path)
        finally:
            if backend_kind == "sharded":
                backend.close()

    def test_persistent_connection_serves_many_requests(self):
        backend = BatchExecutor()
        with AsyncServerThread(backend) as handle:
            host, port = handle.address
            connection = http.client.HTTPConnection(host, port, timeout=30)
            try:
                body = json.dumps({"doc": "d", "sexpr": "(A (B) (B))"})
                connection.request("POST", "/documents", body=body)
                assert connection.getresponse().read()  # drain, keep alive
                for _ in range(3):
                    connection.request(
                        "POST", "/query",
                        body=json.dumps({"doc": "d", "query": "Q(x) <- B(x)"}),
                    )
                    response = connection.getresponse()
                    assert response.status == 200
                    payload = json.loads(response.read())
                    assert payload["answers"] == [[1], [2]]
            finally:
                connection.close()

    def test_header_flood_is_bounded_and_dropped(self):
        """A client streaming endless header lines must get disconnected,
        not grow server memory without bound."""
        backend = BatchExecutor()
        with AsyncServerThread(backend) as handle:
            host, port = handle.address
            import socket

            with socket.create_connection((host, port), timeout=30) as raw:
                raw.sendall(b"GET /healthz HTTP/1.1\r\n")
                with pytest.raises((BrokenPipeError, ConnectionResetError, TimeoutError)):
                    for index in range(5000):
                        raw.sendall(f"x-h{index}: y\r\n".encode())
                    # The server closed on us; drain to surface it.
                    raw.settimeout(5)
                    if raw.recv(1024) == b"":
                        raise ConnectionResetError
            # The server is still healthy for well-formed clients.
            status, body = _http(f"http://{host}:{port}", "GET", "/healthz")
            assert status == 200 and b'"ok"' in body

    def test_async_rejects_bool_limit_and_max_workers(self):
        backend = BatchExecutor()
        with AsyncServerThread(backend) as handle:
            host, port = handle.address
            base = f"http://{host}:{port}"
            _http(base, "POST", "/documents", {"doc": "d", "sexpr": "(A (B))"})
            status, body = _http(
                base, "POST", "/query", {"doc": "d", "query": "Q(x) <- B(x)", "limit": True}
            )
            assert status == 400 and b"non-negative integer" in body
            status, body = _http(
                base, "POST", "/batch",
                {"requests": [{"doc": "d", "query": "Q(x) <- B(x)"}], "max_workers": True},
            )
            assert status == 400 and b"positive integer" in body

    def test_stats_aggregate_across_shards(self, auction):
        backend = ShardedExecutor(shards=2)
        try:
            with AsyncServerThread(backend) as handle:
                host, port = handle.address
                base = f"http://{host}:{port}"
                _http(base, "POST", "/documents", {"doc": "auction", "xml": to_xml(auction)})
                _http(base, "POST", "/documents", {"doc": "sentence", "sexpr": SENTENCE_SEXPR})
                for _ in range(2):
                    _http(base, "POST", "/query",
                          {"doc": "sentence", "query": "Q(x) <- NN(x)"})
                status, body = _http(base, "GET", "/stats")
                assert status == 200
                stats = json.loads(body)
                assert stats["executor"]["backend"] == "sharded"
                assert stats["store"]["documents"] == 2
                assert stats["executor"]["requests"] >= 2
                assert len(stats["shards"]) == 2
                assert stats["cache"]["hit_rate"] >= 0.0
        finally:
            backend.close()


def _strip_volatile(payload):
    """Drop timing/cache fields (and stats bodies) before byte comparison."""
    if isinstance(payload, dict):
        return {
            key: _strip_volatile(value)
            for key, value in payload.items()
            if key not in ("elapsed_ms", "cache_hit")
        }
    if isinstance(payload, list):
        return [_strip_volatile(item) for item in payload]
    return payload
