"""The join-tree SQL lowering and the out-of-core serving path.

Four concern groups, matching the PR 7 surface:

* **Window/threshold formulations**: the order-statistic axes (``Following``,
  ``NextSibling+``, ``DocumentOrder`` and their inverses) lower to aggregate
  thresholds / window CTEs instead of quadratic range predicates; each is
  property-tested against :class:`~repro.trees.index.AxisIndex` ground truth
  (``index.holds`` over the label-filtered candidate pairs) with the dropped
  variable on both sides of the atom.
* **IN-list boundary**: extra unary relations switch from an inline ``IN``
  list to a temp-table join at exactly 500 members; both sides of the
  boundary, the empty relation and the single-node document are checked
  byte-identical to the in-memory planner on both lowerings.
* **Streaming**: ``stream_answers`` equals the sorted answer set for every
  batch size, ``limit`` is applied after the deterministic ``ORDER BY``, and
  ``count_answers`` reports the exact total.
* **Routing**: the serving layer auto-routes accel-only documents to
  ``Engine.SQL``, explicit engine overrides win, and responses are
  byte-identical across the routing paths (including ``limit``/``truncated``
  and boolean semantics).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backends.sqlite import (
    SQLiteBackend,
    evaluate_structure,
    structure_is_satisfied,
)
from repro.decomposition.yannakakis import boolean_query_holds, evaluate_answers
from repro.evaluation import Engine, choose_engine, evaluate
from repro.queries import parse_query
from repro.service import DocumentStore, QueryCache, Request, run_request
from repro.trees import Axis, TreeStructure, parse_sexpr, random_tree

SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: The order-statistic axes the tree lowering turns into aggregate-threshold
#: or window-function witnesses, forward and inverse forms both included (the
#: compiler normalises inverses away, so ``Preceding(x, y)`` exercises the
#: source-dropped branch of the ``Following`` formulation and vice versa).
WINDOW_AXES = (
    Axis.FOLLOWING,
    Axis.PRECEDING,
    Axis.NEXT_SIBLING_PLUS,
    Axis.NEXT_SIBLING_STAR,
    Axis.PRECEDING_SIBLING,
    Axis.DOCUMENT_ORDER,
)


@st.composite
def window_trees(draw, max_size: int = 250):
    size = draw(st.integers(min_value=20, max_value=max_size))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return random_tree(
        size,
        alphabet=("A", "B"),
        max_children=4,
        multi_label_probability=0.2,
        seed=seed,
    )


def _axis_ground_truth(structure, axis):
    """Expected ``A x B`` pairs straight off the AxisIndex rank predicates."""
    index = structure.index
    a_nodes = structure.unary_member_set("A")
    b_nodes = structure.unary_member_set("B")
    return frozenset(
        (u, v) for u in a_nodes for v in b_nodes if index.holds(axis, u, v)
    )


# ---------------------------------------------------------------------------
# Window/threshold formulations vs AxisIndex ground truth.
# ---------------------------------------------------------------------------


def _assert_axis_lowering_matches(tree, axis):
    structure = TreeStructure(tree)
    expected = _axis_ground_truth(structure, axis)
    pair_query = parse_query(f"Q(x, y) <- A(x), {axis.value}(x, y), B(y)")
    # Projecting either endpoint out makes it witness-only: the source-dropped
    # and target-dropped threshold/window branches are both exercised.
    source_query = parse_query(f"Q(x) <- A(x), {axis.value}(x, y), B(y)")
    target_query = parse_query(f"Q(y) <- A(x), {axis.value}(x, y), B(y)")
    with SQLiteBackend() as backend:
        backend.register_tree("doc", tree)
        assert backend.evaluate("doc", pair_query) == expected
        assert backend.evaluate("doc", source_query) == frozenset(
            (u,) for u, _ in expected
        )
        assert backend.evaluate("doc", target_query) == frozenset(
            (v,) for _, v in expected
        )


@pytest.mark.parametrize("axis", WINDOW_AXES, ids=lambda a: a.value)
@given(tree=window_trees())
@SETTINGS
def test_window_lowering_matches_axis_index(axis, tree):
    _assert_axis_lowering_matches(tree, axis)


@pytest.mark.parametrize("axis", WINDOW_AXES, ids=lambda a: a.value)
def test_window_lowering_matches_axis_index_at_1k(axis):
    """One fixed 1000-node document per axis (the ISSUE's stated scale)."""
    tree = random_tree(
        1_000, alphabet=("A", "B"), max_children=4, multi_label_probability=0.2, seed=1234
    )
    _assert_axis_lowering_matches(tree, axis)


@given(tree=window_trees())
@SETTINGS
def test_window_chain_matches_in_memory(tree):
    """A Following chain: thresholds compose across eliminated variables."""
    structure = TreeStructure(tree)
    query = parse_query("Q(x, z) <- A(x), Following(x, y), B(y), Following(y, z), A(z)")
    expected = evaluate(query, structure)
    assert evaluate_structure(query, structure) == expected
    assert evaluate_structure(query, structure, lowering="flat") == expected


# ---------------------------------------------------------------------------
# IN-list boundary, empty relations, single-node documents.
# ---------------------------------------------------------------------------

IN_LIST_QUERY = "Q(x, y) <- Hot(x), Child+(x, y), A(y)"


@pytest.mark.parametrize("members", [500, 501], ids=["inline-in-list", "temp-table"])
def test_extra_unary_in_list_boundary(members):
    """Exactly at and just past the 500-member IN-list cutover."""
    tree = random_tree(600, alphabet=("A",), max_children=3, seed=7)
    structure = TreeStructure(tree)
    structure.add_unary("Hot", range(members))
    query = parse_query(IN_LIST_QUERY)
    expected = evaluate(query, structure)
    assert len(expected) > 0
    assert evaluate_structure(query, structure) == expected
    assert evaluate_structure(query, structure, lowering="flat") == expected


def test_extra_unary_empty_relation():
    tree = random_tree(60, alphabet=("A",), max_children=3, seed=9)
    structure = TreeStructure(tree)
    structure.add_unary("Hot", ())
    query = parse_query(IN_LIST_QUERY)
    assert evaluate(query, structure) == frozenset()
    assert evaluate_structure(query, structure) == frozenset()
    assert evaluate_structure(query, structure, lowering="flat") == frozenset()
    assert not structure_is_satisfied(parse_query("Q() <- Hot(x)"), structure)


def test_single_node_document():
    structure = TreeStructure(parse_sexpr("(A)"))
    cases = {
        "Q(x) <- A(x)": frozenset({(0,)}),
        "Q(x) <- A(x), Child+(x, y)": frozenset(),
        "Q(x) <- A(x), Following(x, y)": frozenset(),
        "Q(x, y) <- A(x), Self(x, y)": frozenset({(0, 0)}),
        "Q() <- A(x)": frozenset({()}),
        "Q() <- B(x)": frozenset(),
    }
    for text, expected in cases.items():
        query = parse_query(text)
        assert evaluate(query, structure) == expected, text
        assert evaluate_structure(query, structure) == expected, text
        assert evaluate_structure(query, structure, lowering="flat") == expected, text


# ---------------------------------------------------------------------------
# Streaming: sorted order, limit pushdown, exact counts.
# ---------------------------------------------------------------------------


def test_stream_answers_sorted_and_limited():
    tree = random_tree(400, alphabet=("A", "B"), max_children=4, seed=11)
    query = parse_query("Q(x, y) <- A(x), Child+(x, y), B(y)")
    with SQLiteBackend() as backend:
        backend.register_tree("doc", tree)
        expected = sorted(backend.evaluate("doc", query))
        assert len(expected) > 3
        assert list(backend.stream_answers("doc", query)) == expected
        assert list(backend.stream_answers("doc", query, batch_size=1)) == expected
        for limit in (0, 1, 3, len(expected), len(expected) + 5):
            assert list(backend.stream_answers("doc", query, limit=limit)) == (
                expected[:limit]
            ), limit
        assert backend.count_answers("doc", query) == len(expected)


def test_stream_answers_boolean_query():
    with SQLiteBackend() as backend:
        backend.register_tree("doc", parse_sexpr("(A (B))"))
        satisfied = parse_query("Q() <- A(x), Child(x, y), B(y)")
        unsatisfied = parse_query("Q() <- B(x), Child(x, y), A(y)")
        assert list(backend.stream_answers("doc", satisfied)) == [()]
        assert list(backend.stream_answers("doc", satisfied, limit=0)) == []
        assert list(backend.stream_answers("doc", unsatisfied)) == []
        assert backend.count_answers("doc", satisfied) == 1
        assert backend.count_answers("doc", unsatisfied) == 0


# ---------------------------------------------------------------------------
# Serving-layer routing: residency, overrides, byte-identity.
# ---------------------------------------------------------------------------

ROUTING_QUERY = "Q(x, y) <- A(x), Child+(x, y), B(y)"


@pytest.fixture()
def routed():
    backend = SQLiteBackend()
    store = DocumentStore(accel_backend=backend)
    tree = random_tree(300, alphabet=("A", "B"), max_children=4, seed=5)
    store.register_tree("resident", tree)
    store.register_tree_accel_only("cold", tree)
    yield store, QueryCache()
    backend.close()


def test_residency_and_containment(routed):
    store, _cache = routed
    assert store.residency("resident") == "resident"
    assert store.residency("cold") == "accel"
    assert store.residency("absent") is None
    assert store.accel_only("cold") and not store.accel_only("resident")
    assert "cold" in store and "resident" in store and "absent" not in store
    described = {entry["doc"]: entry for entry in store.describe()}
    assert described["cold"]["accel_only"] and described["cold"]["nodes"] == 300
    assert store.stats()["accel_only_documents"] == 1


def test_choose_engine_consults_residency():
    query = parse_query(ROUTING_QUERY)
    assert choose_engine(query) is not Engine.SQL
    assert choose_engine(query, accel_only=True) is Engine.SQL


def test_accel_only_auto_routes_to_sql(routed):
    store, cache = routed
    resident = run_request(store, cache, Request(doc="resident", query=ROUTING_QUERY))
    cold = run_request(store, cache, Request(doc="cold", query=ROUTING_QUERY))
    assert resident.ok and cold.ok
    assert resident.engine != "sql"
    assert cold.engine == "sql"
    assert resident.to_json_dict()["answers"] == cold.to_json_dict()["answers"]
    assert resident.count == cold.count


def test_explicit_engine_override_wins(routed):
    store, cache = routed
    baseline = run_request(store, cache, Request(doc="resident", query=ROUTING_QUERY))
    forced = run_request(
        store, cache, Request(doc="resident", query=ROUTING_QUERY, engine="sql")
    )
    assert forced.ok and forced.engine == "sql"
    assert forced.answers == baseline.answers
    # A non-SQL engine cannot see an accel-only document: a client error, not
    # a silent wrong answer and not a batch abort.
    wrong = run_request(
        store, cache, Request(doc="cold", query=ROUTING_QUERY, engine="backtracking")
    )
    assert not wrong.ok and "accel-only" in wrong.error


def test_limit_semantics_identical_across_paths(routed):
    store, cache = routed
    full = run_request(store, cache, Request(doc="resident", query=ROUTING_QUERY))
    for limit in (0, 1, 2, full.count, full.count + 10):
        resident = run_request(
            store, cache, Request(doc="resident", query=ROUTING_QUERY, limit=limit)
        )
        cold = run_request(
            store, cache, Request(doc="cold", query=ROUTING_QUERY, limit=limit)
        )
        assert (resident.answers, resident.count, resident.truncated) == (
            cold.answers,
            cold.count,
            cold.truncated,
        ), limit


def test_boolean_semantics_identical_across_paths(routed):
    store, cache = routed
    text = "Q() <- A(x), Following(x, y), B(y)"
    for limit in (None, 0, 1):
        resident = run_request(
            store, cache, Request(doc="resident", query=text, limit=limit)
        )
        cold = run_request(store, cache, Request(doc="cold", query=text, limit=limit))
        assert resident.ok and cold.ok
        assert (resident.answers, resident.count, resident.truncated, resident.satisfied) == (
            cold.answers,
            cold.count,
            cold.truncated,
            cold.satisfied,
        ), limit


def test_unknown_engine_and_document_are_client_errors(routed):
    store, cache = routed
    bad_engine = run_request(
        store, cache, Request(doc="resident", query=ROUTING_QUERY, engine="warp")
    )
    assert not bad_engine.ok and "unknown engine" in bad_engine.error
    with pytest.raises(ValueError, match="unknown engine"):
        Request.from_json_dict({"doc": "resident", "query": ROUTING_QUERY, "engine": "warp"})
    missing = run_request(store, cache, Request(doc="absent", query=ROUTING_QUERY))
    assert not missing.ok and "unknown document" in missing.error


def test_lazy_residency_attach_from_shared_file(tmp_path):
    """A second store over the same accel file sees the document accel-only."""
    path = str(tmp_path / "accel.db")
    tree = random_tree(120, alphabet=("A", "B"), max_children=3, seed=3)
    with SQLiteBackend(path) as writer:
        DocumentStore(accel_backend=writer).register_tree_accel_only("shared", tree)
    with SQLiteBackend(path) as reader:
        store = DocumentStore(accel_backend=reader)
        cache = QueryCache()
        assert store.residency("shared") == "accel"
        result = run_request(store, cache, Request(doc="shared", query=ROUTING_QUERY))
        assert result.ok and result.engine == "sql"
        expected = sorted(evaluate(parse_query(ROUTING_QUERY), TreeStructure(tree)))
        assert result.answers == expected


# ---------------------------------------------------------------------------
# Decomposition engine: Boolean first-witness short-circuit regression.
# ---------------------------------------------------------------------------

CYCLIC_BOOLEAN_QUERIES = (
    "Q() <- A(x), Child+(x, y), Child+(x, z), Following(y, z), B(y), A(z)",
    "Q() <- A(x), Following(x, y), B(y), Following(y, z), A(z)",
    "Q() <- A(x), Child+(x, y), B(y), NextSibling+(y, z), A(z), Child+(x, z)",
)


@pytest.mark.parametrize("text", CYCLIC_BOOLEAN_QUERIES)
def test_boolean_short_circuit_matches_full_enumeration(text):
    query = parse_query(text)
    for seed in range(12):
        tree = random_tree(
            25, alphabet=("A", "B"), max_children=3, unlabeled_probability=0.3, seed=seed
        )
        structure = TreeStructure(tree)
        assert boolean_query_holds(query, structure) == bool(
            evaluate_answers(query, structure)
        ), seed
