"""Tests for Section 7: diamond queries, PS(n, p) structures, Lemma 7.3, blow-up."""

from __future__ import annotations

import pytest

from repro.evaluation import evaluate_on_tree
from repro.queries.graph import QueryGraph, is_acyclic
from repro.rewriting import to_apq
from repro.succinctness import (
    all_ps_structures,
    apq_matches_diamond_on_ps,
    diamond_alphabet,
    diamond_query,
    diamond_true_on_all_ps,
    lemma73_structure,
    measure_blowup,
    ps_structure,
    render_blowup_table,
    variable_label_paths,
    x_label,
    x_prime_label,
    y_label,
)
from repro.trees.generators import is_scattered


class TestDiamondQueries:
    def test_sizes(self):
        assert diamond_query(1).size() == 1 + 7
        assert diamond_query(3).size() == 1 + 3 * 7
        with pytest.raises(ValueError):
            diamond_query(0)

    def test_structure(self):
        query = diamond_query(2)
        assert query.is_boolean
        assert not is_acyclic(query)
        graph = QueryGraph(query)
        assert not graph.has_directed_cycle()
        # Variable paths go through either the X or the X' variable per level.
        paths = {tuple(path) for path in graph.variable_paths()}
        assert len(paths) == 4  # 2 choices per level, 2 levels

    def test_alphabet(self):
        labels = diamond_alphabet(2)
        assert y_label(1) in labels and y_label(3) in labels
        assert x_label(2) in labels and x_prime_label(2) in labels
        assert len(labels) == 3 + 2 + 2

    def test_diamond_true_on_chain_model(self):
        """D_1 is true on a simple chain Y1 - X1 - Xp1 - Y2."""
        from repro.trees import chain

        model = chain(["Y1", "X1", "Xp1", "Y2"])
        assert evaluate_on_tree(diamond_query(1), model)

    def test_diamond_false_without_prime_label(self):
        from repro.trees import chain

        model = chain(["Y1", "X1", "Y2"])
        assert not evaluate_on_tree(diamond_query(1), model)


class TestPsStructures:
    def test_shape_and_scatteredness(self):
        tree = ps_structure(2, 3, (False, True))
        assert is_scattered(tree, 3)
        labels_in_order = [
            sorted(tree.labels(node))[0]
            for node in tree.node_ids()
            if tree.labels(node)
        ]
        assert labels_in_order == ["Y1", "X1", "Xp1", "Y2", "Xp2", "X2", "Y3"]

    def test_all_ps_structures_count(self):
        structures = list(all_ps_structures(3, 1))
        assert len(structures) == 8
        choice_vectors = {choices for choices, _tree in structures}
        assert len(choice_vectors) == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            ps_structure(2, 1, (True,))
        with pytest.raises(ValueError):
            ps_structure(1, 0, (True,))

    def test_diamond_true_on_all_ps(self):
        assert diamond_true_on_all_ps(1, 2)
        assert diamond_true_on_all_ps(2, 2)
        assert diamond_true_on_all_ps(3, 1)


class TestLabelPathsAndLemma73:
    def test_variable_label_paths_of_diamond(self):
        query = diamond_query(1)
        paths = variable_label_paths(query)
        assert len(paths) == 2
        flattened = [frozenset().union(*path) for path in paths]
        assert {frozenset({"Y1", "X1", "Y2"}), frozenset({"Y1", "Xp1", "Y2"})} == set(flattened)

    def test_lemma73_separates_example78(self):
        """Example 7.8: Q is true on the constructed structure, D_2 is not."""
        from repro.queries import parse_query

        candidate = parse_query(
            "Q <- Y1(a), Child+(a, b), X1(b), Child+(b, c), Y2(c), "
            "Child+(c, d), X2(d), Child+(d, e), Y3(e), "
            "Child+(c, dp), Xp2(dp), Child+(dp, ep), Y3(ep), "
            "Y1(ap), Child+(ap, bp), Xp1(bp), Child+(bp, cp), Y2(cp), "
            "Child+(cp, dq), X2(dq), Child+(dq, eq), Y3(eq)"
        )
        separator = lemma73_structure(candidate, ("Xp1", "Xp2"))
        assert evaluate_on_tree(candidate, separator)
        assert not evaluate_on_tree(diamond_query(2), separator)

    def test_lemma73_requires_labels(self):
        with pytest.raises(ValueError):
            lemma73_structure(diamond_query(1), ())


class TestBlowupMeasurement:
    def test_blowup_grows(self):
        points = measure_blowup(3)
        assert [point.n for point in points] == [1, 2, 3]
        assert points[0].apq_disjuncts >= 1
        # The APQ grows strictly (and quickly) with n.
        assert points[1].apq_size > points[0].apq_size
        assert points[2].apq_size > points[1].apq_size
        assert points[2].blowup_factor > points[0].blowup_factor

    def test_translation_remains_equivalent_on_ps(self):
        apq = to_apq(diamond_query(1))
        assert apq_matches_diamond_on_ps(apq, 1, 2)

    def test_render_table(self):
        text = render_blowup_table(measure_blowup(2))
        assert "APQ disjuncts" in text
        assert text.count("\n") >= 3
