"""Tests for the axis relations: semantics, enumeration, inverses, oracle."""

from __future__ import annotations

import pytest

from repro.trees import Axis, AxisOracle, axis_from_name, materialise
from repro.trees.axes import AX, INVERSE, holds, is_irreflexive, pairs, predecessors, successors


class TestAxisSemantics:
    def test_child(self, sentence_tree):
        assert holds(sentence_tree, Axis.CHILD, 0, 1)
        assert holds(sentence_tree, Axis.CHILD, 4, 6)
        assert not holds(sentence_tree, Axis.CHILD, 0, 2)
        assert not holds(sentence_tree, Axis.CHILD, 1, 0)
        assert not holds(sentence_tree, Axis.CHILD, 3, 3)

    def test_child_plus_is_strict_descendant(self, sentence_tree):
        assert holds(sentence_tree, Axis.CHILD_PLUS, 0, 7)
        assert holds(sentence_tree, Axis.CHILD_PLUS, 4, 7)
        assert not holds(sentence_tree, Axis.CHILD_PLUS, 7, 4)
        assert not holds(sentence_tree, Axis.CHILD_PLUS, 3, 3)
        assert not holds(sentence_tree, Axis.CHILD_PLUS, 1, 4)

    def test_child_star_is_reflexive(self, sentence_tree):
        assert holds(sentence_tree, Axis.CHILD_STAR, 3, 3)
        assert holds(sentence_tree, Axis.CHILD_STAR, 0, 7)
        assert not holds(sentence_tree, Axis.CHILD_STAR, 7, 0)

    def test_next_sibling(self, sentence_tree):
        assert holds(sentence_tree, Axis.NEXT_SIBLING, 1, 4)
        assert holds(sentence_tree, Axis.NEXT_SIBLING, 4, 8)
        assert not holds(sentence_tree, Axis.NEXT_SIBLING, 1, 8)
        assert not holds(sentence_tree, Axis.NEXT_SIBLING, 4, 1)
        # Nodes with different parents are never siblings.
        assert not holds(sentence_tree, Axis.NEXT_SIBLING, 2, 5)

    def test_next_sibling_plus_and_star(self, sentence_tree):
        assert holds(sentence_tree, Axis.NEXT_SIBLING_PLUS, 1, 8)
        assert not holds(sentence_tree, Axis.NEXT_SIBLING_PLUS, 1, 1)
        assert holds(sentence_tree, Axis.NEXT_SIBLING_STAR, 1, 1)
        assert holds(sentence_tree, Axis.NEXT_SIBLING_STAR, 1, 8)
        assert not holds(sentence_tree, Axis.NEXT_SIBLING_STAR, 8, 1)

    def test_following(self, sentence_tree):
        # The NP at node 1 is followed by the VP subtree and the PP.
        assert holds(sentence_tree, Axis.FOLLOWING, 1, 4)
        assert holds(sentence_tree, Axis.FOLLOWING, 1, 7)
        assert holds(sentence_tree, Axis.FOLLOWING, 3, 8)
        # Ancestors and descendants never follow.
        assert not holds(sentence_tree, Axis.FOLLOWING, 0, 7)
        assert not holds(sentence_tree, Axis.FOLLOWING, 7, 0)
        assert not holds(sentence_tree, Axis.FOLLOWING, 1, 2)
        # Following is irreflexive and antisymmetric.
        assert not holds(sentence_tree, Axis.FOLLOWING, 4, 4)
        assert not holds(sentence_tree, Axis.FOLLOWING, 4, 1)

    def test_following_matches_eq1_definition(self, medium_random_tree):
        """Following(x, y) iff some ancestor-or-self of x has a later sibling
        that is an ancestor-or-self of y (Eq. (1) of the paper)."""
        tree = medium_random_tree

        def eq1(x: int, y: int) -> bool:
            for z1 in predecessors(tree, Axis.CHILD_STAR, x):
                for z2 in successors(tree, Axis.NEXT_SIBLING_PLUS, z1):
                    if holds(tree, Axis.CHILD_STAR, z2, y):
                        return True
            return False

        for x in tree.node_ids():
            for y in tree.node_ids():
                assert holds(tree, Axis.FOLLOWING, x, y) == eq1(x, y)

    def test_document_order_and_succ(self, sentence_tree):
        assert holds(sentence_tree, Axis.DOCUMENT_ORDER, 0, 5)
        assert not holds(sentence_tree, Axis.DOCUMENT_ORDER, 5, 5)
        assert holds(sentence_tree, Axis.SUCC_PRE, 3, 4)
        assert not holds(sentence_tree, Axis.SUCC_PRE, 3, 5)

    def test_inverse_axes(self, sentence_tree):
        assert holds(sentence_tree, Axis.PARENT, 1, 0)
        assert holds(sentence_tree, Axis.ANCESTOR, 7, 0)
        assert holds(sentence_tree, Axis.ANCESTOR_OR_SELF, 7, 7)
        assert holds(sentence_tree, Axis.PRECEDING_SIBLING, 8, 1)
        assert holds(sentence_tree, Axis.PRECEDING, 4, 1)
        assert holds(sentence_tree, Axis.SELF, 3, 3)
        assert not holds(sentence_tree, Axis.SELF, 3, 4)


class TestEnumerationAgreesWithHolds:
    @pytest.mark.parametrize("axis", sorted(AX, key=lambda a: a.value))
    def test_successors_match_holds(self, axis, sentence_tree):
        for u in sentence_tree.node_ids():
            enumerated = set(successors(sentence_tree, axis, u))
            expected = {
                v for v in sentence_tree.node_ids() if holds(sentence_tree, axis, u, v)
            }
            assert enumerated == expected

    @pytest.mark.parametrize("axis", sorted(AX, key=lambda a: a.value))
    def test_predecessors_match_holds(self, axis, sentence_tree):
        for v in sentence_tree.node_ids():
            enumerated = set(predecessors(sentence_tree, axis, v))
            expected = {
                u for u in sentence_tree.node_ids() if holds(sentence_tree, axis, u, v)
            }
            assert enumerated == expected

    @pytest.mark.parametrize("axis", sorted(AX, key=lambda a: a.value))
    def test_enumeration_on_random_tree(self, axis, medium_random_tree):
        tree = medium_random_tree
        materialised = materialise(tree, axis)
        assert materialised == set(pairs(tree, axis))
        for u, v in materialised:
            assert holds(tree, axis, u, v)

    def test_inverse_relation_is_transpose(self, medium_random_tree):
        tree = medium_random_tree
        for axis, inverse in INVERSE.items():
            if axis is Axis.NEXT_SIBLING_STAR:
                continue
            forward = materialise(tree, axis)
            backward = materialise(tree, inverse)
            assert backward == {(v, u) for (u, v) in forward}


class TestAxisAlgebra:
    def test_pre_order_decomposition(self, medium_random_tree):
        """<pre is the disjoint union of Child* (minus identity handled apart)
        and Following (used in the proof of Theorem 4.1)."""
        tree = medium_random_tree
        for u in tree.node_ids():
            for v in tree.node_ids():
                if u == v:
                    continue
                strictly_before = tree.pre[u] < tree.pre[v]
                decomposition = holds(tree, Axis.CHILD_PLUS, u, v) or holds(
                    tree, Axis.FOLLOWING, u, v
                )
                assert strictly_before == decomposition

    def test_post_order_decomposition(self, medium_random_tree):
        """<post is the disjoint union of Following and (Child*)^-1 (ditto)."""
        tree = medium_random_tree
        for u in tree.node_ids():
            for v in tree.node_ids():
                if u == v:
                    continue
                strictly_before = tree.post[u] < tree.post[v]
                decomposition = holds(tree, Axis.FOLLOWING, u, v) or holds(
                    tree, Axis.CHILD_PLUS, v, u
                )
                assert strictly_before == decomposition

    def test_irreflexivity_classification(self):
        assert is_irreflexive(Axis.CHILD)
        assert is_irreflexive(Axis.FOLLOWING)
        assert not is_irreflexive(Axis.CHILD_STAR)
        assert not is_irreflexive(Axis.NEXT_SIBLING_STAR)
        assert not is_irreflexive(Axis.SELF)


class TestAxisNamesAndOracle:
    def test_axis_from_name(self):
        assert axis_from_name("Child+") is Axis.CHILD_PLUS
        assert axis_from_name("Descendant") is Axis.CHILD_PLUS
        assert axis_from_name("Following-sibling") is Axis.NEXT_SIBLING_PLUS
        with pytest.raises(ValueError):
            axis_from_name("Sideways")

    def test_oracle_caches_and_agrees(self, sentence_tree):
        oracle = AxisOracle(sentence_tree)
        first = oracle.successors(Axis.CHILD_PLUS, 0)
        second = oracle.successors(Axis.CHILD_PLUS, 0)
        assert first is second  # cached object identity
        assert set(first) == set(successors(sentence_tree, Axis.CHILD_PLUS, 0))
        assert oracle.holds(Axis.CHILD, 0, 1)
        assert set(oracle.predecessors(Axis.CHILD, 1)) == {0}

    def test_unknown_axis_raises(self, sentence_tree):
        with pytest.raises(ValueError):
            holds(sentence_tree, "NotAnAxis", 0, 1)  # type: ignore[arg-type]
