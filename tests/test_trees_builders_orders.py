"""Tests for tree builders (nested / s-expression / chains), orders and XML I/O."""

from __future__ import annotations

import pytest

from repro.trees import (
    Order,
    chain,
    from_nested,
    from_xml,
    less,
    minimum,
    parse_sexpr,
    rank,
    sorted_nodes,
    to_sexpr,
    to_xml,
)
from repro.trees.orders import ALL_ORDERS, key_function


class TestNestedBuilder:
    def test_bare_string_is_leaf(self):
        tree = from_nested("A")
        assert len(tree) == 1
        assert tree.labels(0) == frozenset({"A"})

    def test_nested_structure(self):
        tree = from_nested(("A", [("B", []), ("C", [("D", [])])]))
        assert len(tree) == 4
        assert list(tree.children(0)) == [1, 2]
        assert tree.labels(3) == frozenset({"D"})

    def test_multi_label_spec(self):
        tree = from_nested((("A", "B"), []))
        assert tree.labels(0) == frozenset({"A", "B"})

    def test_empty_label_means_unlabelled(self):
        tree = from_nested(("", [("A", [])]))
        assert tree.labels(0) == frozenset()

    def test_invalid_spec_raises(self):
        with pytest.raises(TypeError):
            from_nested(42)  # type: ignore[arg-type]


class TestSexprBuilder:
    def test_roundtrip(self):
        text = "(S (NP (DT) (NN)) (VP (VB) (NP (NN))) (PP))"
        tree = parse_sexpr(text)
        assert len(tree) == 9
        assert to_sexpr(tree) == text

    def test_multi_label_and_unlabelled(self):
        tree = parse_sexpr("(A|B (. (C)))")
        assert tree.labels(0) == frozenset({"A", "B"})
        assert tree.labels(1) == frozenset()
        assert tree.labels(2) == frozenset({"C"})

    def test_errors(self):
        with pytest.raises(ValueError):
            parse_sexpr("(A (B)")
        with pytest.raises(ValueError):
            parse_sexpr("(A) (B)")
        with pytest.raises(ValueError):
            parse_sexpr("((A))")


class TestChainBuilder:
    def test_chain(self):
        tree = chain(["A", "B", "C"])
        assert len(tree) == 3
        assert tree.parent_of(2) == 1
        assert tree.labels(1) == frozenset({"B"})

    def test_chain_with_unlabelled_and_multisets(self):
        tree = chain(["A", "", ("B", "C")])
        assert tree.labels(1) == frozenset()
        assert tree.labels(2) == frozenset({"B", "C"})

    def test_empty_chain_raises(self):
        with pytest.raises(ValueError):
            chain([])


class TestOrders:
    def test_rank_vectors(self, sentence_tree):
        assert list(rank(sentence_tree, Order.PRE)) == list(sentence_tree.pre)
        assert list(rank(sentence_tree, Order.POST)) == list(sentence_tree.post)
        assert list(rank(sentence_tree, Order.BFLR)) == list(sentence_tree.bflr)

    @pytest.mark.parametrize("order", ALL_ORDERS)
    def test_orders_are_total(self, order, sentence_tree):
        ranks = rank(sentence_tree, order)
        assert sorted(ranks) == list(range(len(sentence_tree)))

    def test_less_and_minimum(self, sentence_tree):
        assert less(sentence_tree, Order.PRE, 0, 5)
        assert not less(sentence_tree, Order.POST, 0, 5)  # root closes last
        assert minimum(sentence_tree, Order.POST, [0, 4, 2]) == 2
        assert minimum(sentence_tree, Order.PRE, [8, 4, 6]) == 4

    def test_minimum_of_empty_raises(self, sentence_tree):
        with pytest.raises(ValueError):
            minimum(sentence_tree, Order.PRE, [])

    def test_sorted_nodes_and_key_function(self, sentence_tree):
        by_post = sorted_nodes(sentence_tree, Order.POST)
        assert by_post[0] == 2  # first closing tag
        assert by_post[-1] == 0  # root closes last
        key = key_function(sentence_tree, Order.BFLR)
        assert sorted(sentence_tree.node_ids(), key=key) == sorted_nodes(
            sentence_tree, Order.BFLR
        )

    def test_unknown_order_raises(self, sentence_tree):
        with pytest.raises(ValueError):
            rank(sentence_tree, "sideways")  # type: ignore[arg-type]


class TestXmlIO:
    def test_from_xml_basic(self):
        tree = from_xml("<a><b/><c><d/></c></a>")
        assert tree.labels(0) == frozenset({"a"})
        assert len(tree) == 4
        assert list(tree.children(0)) == [1, 2]

    def test_attributes_become_children(self):
        tree = from_xml('<item id="7"><name/></item>')
        assert list(tree.nodes_with_label("@id")) != []
        attribute_node = tree.nodes_with_label("@id")[0]
        value_node = tree.children(attribute_node)[0]
        assert tree.labels(value_node) == frozenset({"7"})

    def test_attributes_can_be_skipped(self):
        tree = from_xml('<item id="7"><name/></item>', include_attributes=False)
        assert list(tree.nodes_with_label("@id")) == []
        assert len(tree) == 2

    def test_roundtrip_preserves_structure(self, sentence_tree):
        xml = to_xml(sentence_tree)
        rebuilt = from_xml(xml)
        assert len(rebuilt) == len(sentence_tree)
        assert rebuilt.alphabet() == sentence_tree.alphabet()

    def test_multilabel_serialisation(self):
        tree = from_nested((("A", "B"), [("C", [])]))
        xml = to_xml(tree)
        assert 'labels="A B"' in xml
