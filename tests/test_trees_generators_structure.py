"""Tests for tree generators and the relational-structure view."""

from __future__ import annotations

import pytest

from repro.trees import (
    Axis,
    Signature,
    TAU,
    TreeStructure,
    all_trees,
    is_scattered,
    path_structure,
    random_binary_tree,
    random_path,
    random_tree,
    scattered_path_structure,
    structure,
)


class TestRandomTree:
    def test_size_and_alphabet(self):
        tree = random_tree(25, alphabet=("A", "B"), seed=1)
        assert len(tree) == 25
        assert tree.alphabet() <= {"A", "B"}

    def test_deterministic_with_seed(self):
        first = random_tree(30, seed=42)
        second = random_tree(30, seed=42)
        assert first.to_nested() == second.to_nested()

    def test_max_children_respected(self):
        tree = random_tree(40, max_children=2, seed=3)
        assert all(len(tree.children(v)) <= 2 for v in tree.node_ids())

    def test_multi_label_and_unlabelled_probabilities(self):
        tree = random_tree(
            60, multi_label_probability=1.0, unlabeled_probability=0.0, seed=5
        )
        assert any(len(tree.labels(v)) == 2 for v in tree.node_ids())
        bare = random_tree(60, unlabeled_probability=1.0, seed=5)
        assert all(not bare.labels(v) for v in bare.node_ids())

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            random_tree(0)

    def test_binary_and_path_shapes(self):
        binary = random_binary_tree(20, seed=2)
        assert all(len(binary.children(v)) <= 2 for v in binary.node_ids())
        path = random_path(10, seed=2)
        assert all(len(path.children(v)) <= 1 for v in path.node_ids())
        assert len(path) == 10


class TestPathStructures:
    def test_path_structure_shape(self):
        tree = path_structure([("A",), (), ("B",)])
        assert len(tree) == 3
        assert all(len(tree.children(v)) <= 1 for v in tree.node_ids())
        assert tree.labels(1) == frozenset()

    def test_scattered_structure_is_scattered(self):
        tree = scattered_path_structure(3, ["A", "B", "C"])
        assert is_scattered(tree, 3)
        # It is not (k+gap)-scattered for a much larger k.
        assert not is_scattered(tree, 50)

    def test_scattered_requires_distinct_labels(self):
        with pytest.raises(ValueError):
            scattered_path_structure(2, ["A", "A"])

    def test_scattered_gap_validation(self):
        with pytest.raises(ValueError):
            scattered_path_structure(3, ["A"], gap=1)

    def test_is_scattered_rejects_branches_and_duplicates(self):
        from repro.trees import from_nested

        branching = from_nested(("A", [("B", []), ("C", [])]))
        assert not is_scattered(branching, 1)
        duplicate = path_structure([("A",), (), (), ("A",)])
        assert not is_scattered(duplicate, 2)


class TestAllTrees:
    def test_counts_small(self):
        # 1 shape of size 1, 1 of size 2, 2 of size 3; alphabet of 2 labels.
        trees = list(all_trees(3, ("A", "B")))
        expected = 1 * 2 + 1 * 4 + 2 * 8
        assert len(trees) == expected

    def test_all_have_single_labels(self):
        for tree in all_trees(3, ("A",)):
            assert all(len(tree.labels(v)) == 1 for v in tree.node_ids())


class TestSignatureAndStructure:
    def test_signature_membership_and_union(self):
        signature = Signature.of(Axis.CHILD, Axis.FOLLOWING)
        assert Axis.CHILD in signature
        assert Axis.CHILD_PLUS not in signature
        merged = signature.union(Signature.of(Axis.CHILD_PLUS))
        assert Axis.CHILD_PLUS in merged
        assert len(merged) == 3
        assert str(signature) == "{Child, Following}"

    def test_named_taus(self):
        assert TAU["tau1"].axes == frozenset({Axis.CHILD_PLUS, Axis.CHILD_STAR})
        assert TAU["tau6"].axes == frozenset({Axis.CHILD, Axis.FOLLOWING})
        assert len(TAU["ax"]) == 7

    def test_structure_unary_relations(self, sentence_tree):
        ts = TreeStructure(sentence_tree)
        assert list(ts.unary_members("NP")) == [1, 6]
        assert ts.unary_holds("S", 0)
        assert not ts.unary_holds("S", 1)
        assert "NP" in ts.unary_names()

    def test_structure_extra_unary_and_singletons(self, sentence_tree):
        ts = TreeStructure(sentence_tree, extra_unary={"Pinned": [3]})
        assert ts.unary_holds("Pinned", 3)
        assert not ts.unary_holds("Pinned", 4)
        pinned = ts.with_singletons({"X0": 5})
        assert pinned.unary_holds("X0", 5)
        assert list(pinned.unary_members("X0")) == [5]
        # Original structure unaffected.
        assert not ts.unary_holds("X0", 5)

    def test_structure_rejects_bad_node_ids(self, sentence_tree):
        ts = TreeStructure(sentence_tree)
        with pytest.raises(ValueError):
            ts.add_unary("Bad", [999])

    def test_structure_axis_access_and_sizes(self, sentence_tree):
        ts = structure(sentence_tree, Axis.CHILD, Axis.CHILD_PLUS)
        assert ts.signature.axes == frozenset({Axis.CHILD, Axis.CHILD_PLUS})
        assert ts.axis_holds(Axis.CHILD, 0, 1)
        assert set(ts.axis_successors(Axis.CHILD, 0)) == {1, 4, 8}
        assert set(ts.axis_predecessors(Axis.CHILD, 1)) == {0}
        assert ts.domain_size == len(sentence_tree)
        assert ts.size() >= sentence_tree.structure_size()
