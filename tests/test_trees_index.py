"""Tests for the pre/post interval index (:mod:`repro.trees.index`).

The index must agree *exactly* with the traversal-based reference
implementation in :mod:`repro.trees.axes` -- on ``holds`` for every axis and
on witness existence against arbitrary candidate sets -- and the interval
revise step must reach the same arc-consistency fixpoint as both the
enumeration revise step and the literal Horn program of Proposition 3.1.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.evaluation import (
    initial_domains,
    is_arc_consistent,
    maximal_arc_consistent,
    maximal_arc_consistent_horn,
)
from repro.evaluation.arc_consistency import _revise_enumeration, _revise_interval
from repro.hardness import random_cyclic_query
from repro.queries import parse_query
from repro.trees import (
    Axis,
    TreeStructure,
    chain,
    from_nested,
    nodes_in_pre_range,
    random_tree,
    range_any,
    range_count,
)
from repro.trees.axes import holds as naive_holds
from repro.trees.axes import predecessors as naive_predecessors
from repro.trees.axes import successors as naive_successors

ALL_AXES = tuple(Axis)
ALPHABET = ("A", "B", "C")

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def sample_trees():
    """A deterministic mix of shapes: chains, stars, and random trees."""
    trees = [
        chain(["A"]),
        chain(["A", "B", "A", "C", "B"]),
        from_nested(("R", [("A", []), ("B", []), ("C", []), ("A", []), ("B", [])])),
    ]
    for size, seed in [(9, 0), (17, 1), (30, 2), (45, 3)]:
        trees.append(random_tree(size, alphabet=ALPHABET, seed=seed))
    for size, seed in [(20, 4), (35, 5)]:
        trees.append(random_tree(size, alphabet=ALPHABET, max_children=2, seed=seed))
    return trees


TREES = sample_trees()


@st.composite
def trees(draw, max_size: int = 16):
    size = draw(st.integers(min_value=1, max_value=max_size))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return random_tree(size, alphabet=ALPHABET, max_children=3, seed=seed)


# ---------------------------------------------------------------------------
# Bisect primitives.
# ---------------------------------------------------------------------------


class TestPrimitives:
    def test_against_bruteforce(self):
        rng = random.Random(11)
        for _ in range(200):
            array = sorted(rng.sample(range(60), rng.randint(0, 25)))
            lo = rng.randint(-5, 65)
            hi = rng.randint(-5, 65)
            expected = [x for x in array if lo <= x < hi]
            assert range_count(array, lo, hi) == len(expected)
            assert range_any(array, lo, hi) == bool(expected)
            assert list(nodes_in_pre_range(array, lo, hi)) == expected

    def test_empty_array(self):
        assert range_count([], 0, 10) == 0
        assert not range_any([], 0, 10)
        assert list(nodes_in_pre_range([], 0, 10)) == []


# ---------------------------------------------------------------------------
# Rank arrays and per-label lists.
# ---------------------------------------------------------------------------


class TestRankArrays:
    @pytest.mark.parametrize("tree_index", range(len(TREES)))
    def test_arrays_consistent_with_tree(self, tree_index):
        tree = TREES[tree_index]
        index = tree.index
        n = len(tree)
        assert index.pre == list(range(n))
        assert sorted(index.post) == list(range(n))
        assert [index.post[node] for node in index.nodes_by_post] == list(range(n))
        for node in tree.node_ids():
            children = tree.children_of[node]
            assert index.first_child[node] == (children[0] if children else -1)
            expected_next = tree.next_sibling(node)
            assert index.next_sibling[node] == (expected_next if expected_next is not None else -1)
            if index.prev_sibling[node] >= 0:
                assert tree.next_sibling(index.prev_sibling[node]) == node

    @pytest.mark.parametrize("tree_index", range(len(TREES)))
    def test_label_nodes_sorted_and_complete(self, tree_index):
        tree = TREES[tree_index]
        index = tree.index
        for label in tree.alphabet():
            nodes = list(index.label_nodes(label))
            assert nodes == sorted(nodes)
            assert nodes == [v for v in tree.node_ids() if tree.has_label(v, label)]
        assert list(index.label_nodes("no-such-label")) == []

    def test_index_is_cached_and_shared(self):
        tree = TREES[3]
        assert tree.index is tree.index
        structure = TreeStructure(tree)
        assert structure.index is tree.index


# ---------------------------------------------------------------------------
# holds: rank-comparison vs traversal reference, every axis, all pairs.
# ---------------------------------------------------------------------------


class TestHolds:
    @pytest.mark.parametrize("axis", ALL_AXES, ids=lambda axis: axis.value)
    def test_holds_matches_naive_on_all_pairs(self, axis):
        for tree in TREES:
            index = tree.index
            for u in tree.node_ids():
                for v in tree.node_ids():
                    assert index.holds(axis, u, v) == naive_holds(tree, axis, u, v), (
                        f"{axis.value}({u}, {v}) disagrees on {tree!r}"
                    )

    @SETTINGS
    @given(trees())
    def test_holds_matches_naive_hypothesis(self, tree):
        index = tree.index
        for axis in ALL_AXES:
            for u in tree.node_ids():
                for v in tree.node_ids():
                    assert index.holds(axis, u, v) == naive_holds(tree, axis, u, v)


# ---------------------------------------------------------------------------
# Witness tests against candidate sets, every axis.
# ---------------------------------------------------------------------------


def candidate_sets(tree, rng, count=6):
    n = len(tree)
    sets = [set(), set(tree.node_ids())]
    for _ in range(count):
        sets.append(set(rng.sample(range(n), rng.randint(0, n))))
    return sets


class TestWitnesses:
    @pytest.mark.parametrize("axis", ALL_AXES, ids=lambda axis: axis.value)
    def test_witnesses_match_naive_enumeration(self, axis):
        rng = random.Random(99)
        for tree in TREES:
            index = tree.index
            for nodes in candidate_sets(tree, rng):
                view = index.view(nodes)
                for u in tree.node_ids():
                    expected = any(w in nodes for w in naive_successors(tree, axis, u))
                    assert index.has_successor_in(axis, u, view) == expected
                    expected = any(w in nodes for w in naive_predecessors(tree, axis, u))
                    assert index.has_predecessor_in(axis, u, view) == expected

    @SETTINGS
    @given(trees(), st.integers(min_value=0, max_value=10_000))
    def test_witnesses_match_naive_hypothesis(self, tree, seed):
        rng = random.Random(seed)
        index = tree.index
        nodes = set(rng.sample(range(len(tree)), rng.randint(0, len(tree))))
        view = index.view(nodes)
        for axis in ALL_AXES:
            for u in tree.node_ids():
                expected = any(w in nodes for w in naive_successors(tree, axis, u))
                assert index.has_successor_in(axis, u, view) == expected
                expected = any(w in nodes for w in naive_predecessors(tree, axis, u))
                assert index.has_predecessor_in(axis, u, view) == expected

    def test_structure_passthrough(self, sentence_structure):
        view = sentence_structure.domain_view({3, 7})
        assert sentence_structure.axis_has_predecessor_in(Axis.CHILD, 3, view) is False
        view = sentence_structure.domain_view({1, 6})
        assert sentence_structure.axis_has_predecessor_in(Axis.CHILD, 3, view) is True
        assert sentence_structure.axis_has_successor_in(Axis.CHILD_PLUS, 0, view) is True


# ---------------------------------------------------------------------------
# Revise steps: interval vs enumeration, fixpoint vs Horn program.
# ---------------------------------------------------------------------------


def random_queries(rng):
    queries = [
        parse_query("Q <- A(x), Child+(x, y), B(y)"),
        parse_query("Q <- A(x), Child(x, y), Following(y, z), C(z)"),
        parse_query("Q <- NextSibling+(x, y), Child*(y, z), NextSibling*(z, w)"),
        parse_query("Q <- Child*(x, x), Following(x, y)"),
    ]
    for seed in range(6):
        queries.append(
            random_cyclic_query(
                (
                    Axis.CHILD,
                    Axis.CHILD_PLUS,
                    Axis.CHILD_STAR,
                    Axis.NEXT_SIBLING,
                    Axis.NEXT_SIBLING_PLUS,
                    Axis.NEXT_SIBLING_STAR,
                    Axis.FOLLOWING,
                ),
                num_variables=rng.randint(3, 5),
                num_extra_atoms=rng.randint(0, 3),
                seed=seed,
            )
        )
    return queries


class TestReviseAgreement:
    def test_single_revise_steps_agree(self):
        rng = random.Random(5)
        for tree in TREES:
            structure = TreeStructure(tree)
            for query in random_queries(rng):
                for atom in query.axis_atoms():
                    domains_a = initial_domains(query, structure)
                    domains_b = {k: set(v) for k, v in domains_a.items()}
                    changed_a = _revise_interval(atom, domains_a, structure)
                    changed_b = _revise_enumeration(atom, domains_b, structure)
                    assert domains_a == domains_b
                    assert sorted(changed_a) == sorted(changed_b)

    def test_fixpoint_matches_enumeration_and_horn(self):
        rng = random.Random(6)
        for tree in TREES:
            structure = TreeStructure(tree)
            for query in random_queries(rng):
                via_index = maximal_arc_consistent(query, structure, use_index=True)
                via_enum = maximal_arc_consistent(query, structure, use_index=False)
                via_horn = maximal_arc_consistent_horn(query, structure)
                assert via_index == via_enum
                assert via_index == via_horn
                if via_index is not None:
                    assert is_arc_consistent(query, structure, via_index)

    def test_fixpoint_matches_horn_with_pinning(self):
        tree = TREES[5]
        structure = TreeStructure(tree)
        query = parse_query("Q(x) <- A(x), Child+(x, y), B(y)")
        for pin in range(len(tree)):
            via_index = maximal_arc_consistent(query, structure, pinned={"x": pin})
            via_horn = maximal_arc_consistent_horn(query, structure, pinned={"x": pin})
            assert via_index == via_horn

    @SETTINGS
    @given(trees(), st.integers(min_value=0, max_value=10_000))
    def test_fixpoint_equality_hypothesis(self, tree, seed):
        rng = random.Random(seed)
        structure = TreeStructure(tree)
        query = random_cyclic_query(
            tuple(Axis(a) for a in ("Child", "Child+", "Child*", "Following")),
            num_variables=rng.randint(3, 4),
            num_extra_atoms=rng.randint(0, 2),
            seed=seed,
        )
        via_index = maximal_arc_consistent(query, structure, use_index=True)
        via_horn = maximal_arc_consistent_horn(query, structure)
        assert via_index == via_horn
