"""Tests for the tree substrate: Node, Tree, numberings, navigation."""

from __future__ import annotations

import pytest

from repro.trees import Node, Tree, from_nested


class TestNode:
    def test_single_string_label(self):
        node = Node("A")
        assert node.labels == frozenset({"A"})
        assert node.label() == "A"

    def test_multiple_labels(self):
        node = Node(("A", "B"))
        assert node.labels == frozenset({"A", "B"})
        with pytest.raises(ValueError):
            node.label()

    def test_unlabelled_node(self):
        node = Node()
        assert node.labels == frozenset()
        assert node.label() is None

    def test_add_child_sets_parent(self):
        root = Node("R")
        child = root.add("C")
        assert child.parent is root
        assert root.children == [child]

    def test_index_requires_finalised_tree(self):
        node = Node("A")
        with pytest.raises(RuntimeError):
            _ = node.index
        Tree(node)
        assert node.index == 0

    def test_iter_subtree_preorder(self):
        root = Node("R")
        a = root.add("A")
        a.add("B")
        root.add("C")
        labels = [sorted(n.labels)[0] for n in root.iter_subtree()]
        assert labels == ["R", "A", "B", "C"]

    def test_is_leaf(self):
        root = Node("R")
        child = root.add("C")
        assert not root.is_leaf
        assert child.is_leaf


class TestTreeNumberings:
    def test_preorder_ids_are_document_order(self, sentence_tree):
        # Pre-order ids equal positions in a depth-first left-to-right walk.
        assert list(sentence_tree.pre) == list(range(len(sentence_tree)))

    def test_parent_and_children(self, sentence_tree):
        assert sentence_tree.parent_of(0) is None
        assert sentence_tree.parent_of(1) == 0
        assert list(sentence_tree.children(0)) == [1, 4, 8]
        assert list(sentence_tree.children(1)) == [2, 3]

    def test_depths(self, sentence_tree):
        assert sentence_tree.depth[0] == 0
        assert sentence_tree.depth[1] == 1
        assert sentence_tree.depth[2] == 2
        assert sentence_tree.depth[7] == 3

    def test_postorder_root_is_last(self, sentence_tree):
        assert sentence_tree.post[0] == len(sentence_tree) - 1

    def test_postorder_leftmost_leaf_first(self, sentence_tree):
        # Node 2 (the DT leaf) is the first node closed in post-order.
        assert sentence_tree.post[2] == 0

    def test_bflr_levels(self, sentence_tree):
        # Root first, then its three children in order, then the grandchildren.
        assert sentence_tree.bflr[0] == 0
        assert sentence_tree.bflr[1] == 1
        assert sentence_tree.bflr[4] == 2
        assert sentence_tree.bflr[8] == 3
        assert sentence_tree.bflr[2] == 4

    def test_sibling_index(self, sentence_tree):
        assert sentence_tree.sibling_index[1] == 0
        assert sentence_tree.sibling_index[4] == 1
        assert sentence_tree.sibling_index[8] == 2

    def test_subtree_end_and_descendants(self, sentence_tree):
        assert list(sentence_tree.descendants(1)) == [2, 3]
        assert list(sentence_tree.descendants(4)) == [5, 6, 7]
        assert list(sentence_tree.descendants(8)) == []
        assert sentence_tree.is_descendant(0, 7)
        assert not sentence_tree.is_descendant(1, 4)
        assert not sentence_tree.is_descendant(4, 4)

    def test_next_sibling(self, sentence_tree):
        assert sentence_tree.next_sibling(1) == 4
        assert sentence_tree.next_sibling(4) == 8
        assert sentence_tree.next_sibling(8) is None
        assert sentence_tree.next_sibling(0) is None

    def test_siblings_after(self, sentence_tree):
        assert list(sentence_tree.siblings_after(1)) == [4, 8]
        assert list(sentence_tree.siblings_after(8)) == []

    def test_following(self, sentence_tree):
        # Following(NP at 1) = everything after its subtree closes.
        assert list(sentence_tree.following(1)) == [4, 5, 6, 7, 8]
        # Nothing follows the root.
        assert list(sentence_tree.following(0)) == []

    def test_path_to_root(self, sentence_tree):
        assert sentence_tree.path_to_root(7) == [7, 6, 4, 0]
        assert sentence_tree.path_to_root(0) == [0]


class TestTreeLabels:
    def test_labels_and_alphabet(self, sentence_tree):
        assert sentence_tree.has_label(0, "S")
        assert not sentence_tree.has_label(0, "NP")
        assert sentence_tree.alphabet() == frozenset(
            {"S", "NP", "VP", "PP", "DT", "NN", "VB"}
        )

    def test_nodes_with_label(self, sentence_tree):
        assert list(sentence_tree.nodes_with_label("NP")) == [1, 6]
        assert list(sentence_tree.nodes_with_label("missing")) == []

    def test_multi_label_nodes(self):
        tree = from_nested((("A", "B"), [("C", [])]))
        assert tree.labels(0) == frozenset({"A", "B"})
        assert list(tree.nodes_with_label("A")) == [0]
        assert list(tree.nodes_with_label("B")) == [0]

    def test_structure_size_counts_nodes_edges_labels(self, sentence_tree):
        n = len(sentence_tree)
        assert sentence_tree.structure_size() == n + (n - 1) + n  # one label per node

    def test_to_nested_roundtrip(self, sentence_tree):
        rebuilt = from_nested(sentence_tree.to_nested())
        assert len(rebuilt) == len(sentence_tree)
        assert rebuilt.alphabet() == sentence_tree.alphabet()
        assert rebuilt.labels_of == sentence_tree.labels_of


class TestSingleNodeTree:
    def test_single_node(self):
        tree = from_nested(("A", []))
        assert len(tree) == 1
        assert tree.parent_of(0) is None
        assert list(tree.descendants(0)) == []
        assert list(tree.following(0)) == []
        assert tree.post == [0]
        assert tree.bflr == [0]
