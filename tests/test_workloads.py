"""Tests for the application workloads: linguistics, XML, dominance constraints."""

from __future__ import annotations

import pytest

from repro.evaluation import evaluate_on_tree, evaluate_union
from repro.queries.graph import is_acyclic
from repro.trees import TreeStructure, from_nested
from repro.workloads import (
    DominanceParseError,
    auction_document,
    busy_auction_query,
    coordinated_sentences_query,
    described_items_query,
    figure1_query,
    is_satisfiable_over,
    items_with_payment_query,
    np_with_pp_modifier_query,
    parse_dominance_constraints,
    random_corpus,
    random_sentence_tree,
    solved_forms,
    verb_with_object_query,
)


class TestLinguisticsWorkload:
    def test_figure1_query_shape(self):
        query = figure1_query()
        assert query.is_monadic
        assert query.labels() == {"S", "NP", "PP"}
        assert query.size() == 6

    def test_figure1_on_handcrafted_sentence(self):
        tree = from_nested(
            (
                "S",
                [
                    ("NP", [("DT", []), ("NN", [])]),
                    ("VP", [("VB", []), ("PP", [("IN", [])])]),
                ],
            )
        )
        answers = {node for (node,) in evaluate_on_tree(figure1_query(), tree)}
        assert answers == set(tree.nodes_with_label("PP"))

    def test_figure1_pp_before_np_not_matched(self):
        tree = from_nested(("S", [("PP", []), ("NP", [])]))
        assert evaluate_on_tree(figure1_query(), tree) == frozenset()

    def test_random_sentence_trees(self):
        tree = random_sentence_tree(seed=3)
        assert tree.labels(0) == frozenset({"S"})
        assert len(tree) > 1
        corpus = random_corpus(5, seed=3)
        assert corpus.labels(0) == frozenset({"CORPUS"})
        assert len(corpus.nodes_with_label("S")) == 5

    def test_corpus_generation_is_deterministic(self):
        assert random_corpus(4, seed=9).to_nested() == random_corpus(4, seed=9).to_nested()

    def test_other_queries_run_on_corpus(self):
        corpus = random_corpus(8, seed=1)
        for query in (np_with_pp_modifier_query(), verb_with_object_query()):
            evaluate_on_tree(query, corpus)  # must not raise
        cyclic = coordinated_sentences_query()
        assert not is_acyclic(cyclic)
        evaluate_on_tree(cyclic, corpus)


class TestXmlWorkload:
    def test_document_shape(self):
        document = auction_document(num_items=10, num_people=4, num_bids=6, seed=5)
        assert document.labels(0) == frozenset({"site"})
        assert len(document.nodes_with_label("item")) == 10
        assert len(document.nodes_with_label("person")) == 4
        assert len(document.nodes_with_label("open_auction")) == 6

    def test_items_with_payment(self):
        document = auction_document(num_items=15, seed=2)
        answers = {node for (node,) in evaluate_on_tree(items_with_payment_query(), document)}
        expected = {
            item
            for item in document.nodes_with_label("item")
            if any("payment" in document.labels(child) for child in document.children(item))
        }
        assert answers == expected

    def test_described_items(self):
        document = auction_document(num_items=15, seed=2)
        answers = {node for (node,) in evaluate_on_tree(described_items_query(), document)}
        for item in answers:
            assert "item" in document.labels(item)

    def test_busy_auction_query_is_cyclic_and_correct(self):
        document = auction_document(num_bids=25, seed=4)
        query = busy_auction_query()
        assert not is_acyclic(query)
        answers = {node for (node,) in evaluate_on_tree(query, document)}
        expected = {
            auction
            for auction in document.nodes_with_label("open_auction")
            if sum(
                1
                for child in document.children(auction)
                if "bidder" in document.labels(child)
            )
            >= 2
        }
        assert answers == expected


class TestDominanceConstraints:
    def test_parsing(self):
        constraints = parse_dominance_constraints(
            """
            # a small constraint set
            x <* y
            y < z
            x << w
            z : VP
            """
        )
        assert constraints.is_boolean
        assert constraints.size() == 4
        assert constraints.labels() == {"VP"}

    def test_parse_error(self):
        with pytest.raises(DominanceParseError):
            parse_dominance_constraints("x >> y")

    def test_satisfiability_over_a_tree(self, sentence_tree):
        constraints = parse_dominance_constraints(
            """
            s <+ np
            s <+ pp
            np << pp
            np : NP
            pp : PP
            s : S
            """
        )
        assert is_satisfiable_over(constraints, sentence_tree)
        impossible = parse_dominance_constraints("x < y \n y < x")
        assert not is_satisfiable_over(impossible, sentence_tree)

    def test_solved_forms_are_acyclic_and_equivalent(self, sentence_tree):
        constraints = parse_dominance_constraints(
            """
            root <* a
            root <* b
            a <+ c
            b <+ c
            a : NP
            b : VP
            """
        )
        forms = solved_forms(constraints)
        assert forms.is_acyclic()
        structure = TreeStructure(sentence_tree)
        assert bool(evaluate_union(forms, structure)) == bool(
            evaluate_on_tree(constraints, sentence_tree)
        )

    def test_unsatisfiable_constraints_have_no_solved_forms(self):
        constraints = parse_dominance_constraints("x <+ y \n y <+ x")
        assert solved_forms(constraints).is_empty()
