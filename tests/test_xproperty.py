"""Tests for the X-property framework: definition, Theorem 4.1, dichotomy, Table I."""

from __future__ import annotations

import pytest

from repro.trees import Axis, Order, from_nested, random_tree
from repro.trees.structure import TAU, Signature
from repro.xproperty import (
    Complexity,
    MAXIMAL_TRACTABLE_SETS,
    PAPER_TABLE1,
    X_PROPERTY_AXES,
    all_counterexamples,
    axis_subset_of_order,
    classify,
    figure3a,
    figure3b,
    find_axis_violation,
    find_violation,
    find_violation_lemma36,
    has_x_property,
    has_x_property_relation,
    is_tractable,
    order_for,
    relation_subset_of_order,
    render_table1,
    table1,
    verify_maximality,
)


class TestDefinition:
    def test_explicit_relation_with_property(self):
        # A "staircase" relation: crossing arcs always have their underbar.
        relation = {(0, 0), (0, 1), (1, 1), (0, 2), (1, 2), (2, 2)}
        order = {0: 0, 1: 1, 2: 2}
        assert has_x_property_relation(relation, order)

    def test_explicit_relation_without_property(self):
        relation = {(1, 0), (0, 3)}  # crossing arcs, no (0, 0) underbar
        order = {i: i for i in range(4)}
        violation = find_violation(relation, order)
        assert violation is not None
        assert violation.missing == (0, 0)
        assert "does not hold" in str(violation)

    def test_lemma36_restricted_check_agrees_for_subset_relations(self):
        relation = {(0, 1), (0, 3), (1, 2), (2, 3)}
        order = {i: i for i in range(4)}
        assert relation_subset_of_order(relation, order)
        full = find_violation(relation, order)
        restricted = find_violation_lemma36(relation, order)
        assert (full is None) == (restricted is None)

    def test_subset_inclusions_of_section4(self, medium_random_tree):
        """The inclusion list at the start of Section 4, checked on a random tree."""
        tree = medium_random_tree
        for axis in (
            Axis.CHILD,
            Axis.CHILD_PLUS,
            Axis.CHILD_STAR,
            Axis.NEXT_SIBLING,
            Axis.NEXT_SIBLING_PLUS,
            Axis.NEXT_SIBLING_STAR,
            Axis.FOLLOWING,
        ):
            assert axis_subset_of_order(tree, axis, Order.PRE)
        for axis in (
            Axis.FOLLOWING,
            Axis.NEXT_SIBLING,
            Axis.NEXT_SIBLING_PLUS,
            Axis.NEXT_SIBLING_STAR,
            Axis.PARENT,
            Axis.ANCESTOR,
            Axis.ANCESTOR_OR_SELF,
        ):
            assert axis_subset_of_order(tree, axis, Order.POST)
        for axis in (
            Axis.CHILD,
            Axis.CHILD_PLUS,
            Axis.CHILD_STAR,
            Axis.NEXT_SIBLING,
            Axis.NEXT_SIBLING_PLUS,
            Axis.NEXT_SIBLING_STAR,
        ):
            assert axis_subset_of_order(tree, axis, Order.BFLR)


class TestTheorem41:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_positive_claims_hold_on_random_trees(self, seed):
        tree = random_tree(22, alphabet=("A", "B"), seed=seed)
        for order, axes in X_PROPERTY_AXES.items():
            for axis in axes:
                if axis is Axis.SELF:
                    continue
                assert has_x_property(tree, axis, order), (axis, order)

    def test_succ_and_document_order_have_x_wrt_pre(self, medium_random_tree):
        assert has_x_property(medium_random_tree, Axis.DOCUMENT_ORDER, Order.PRE)
        assert has_x_property(medium_random_tree, Axis.SUCC_PRE, Order.PRE)

    def test_negative_combinations_have_counterexamples(self):
        """Example 4.5: the remaining inclusion/order pairs fail on witnesses."""
        a = figure3a()
        assert a.confirms_failure
        assert a.axis is Axis.FOLLOWING and a.order is Order.PRE
        b = figure3b()
        assert b.confirms_failure
        b_star = figure3b(Axis.ANCESTOR_OR_SELF)
        assert b_star.confirms_failure
        with pytest.raises(ValueError):
            figure3b(Axis.CHILD)
        assert len(all_counterexamples()) == 3

    def test_figure3a_exact_witness(self):
        """The violation matches the paper's numbering (2,6)/(3,4) missing (2,4)."""
        counterexample = figure3a()
        violation = counterexample.violation
        assert violation is not None
        # Paper numbering is 1-based pre-order; ours is 0-based.
        assert violation.missing == (1, 3)

    def test_child_lacks_x_wrt_pre_on_a_witness(self):
        # Child is not included in the pre-order X group; exhibit a violation.
        tree = from_nested(("R", [("A", [("B", [])]), ("C", [])]))
        # Child arcs: (0,1), (1,2), (0,3): crossing (1,2) and (0,3) need (0,2).
        assert find_axis_violation(tree, Axis.CHILD, Order.PRE) is not None


class TestDichotomy:
    def test_order_for_tractable_sets(self):
        assert order_for({Axis.CHILD_PLUS, Axis.CHILD_STAR}) is Order.PRE
        assert order_for({Axis.FOLLOWING}) is Order.POST
        assert (
            order_for(
                {Axis.CHILD, Axis.NEXT_SIBLING, Axis.NEXT_SIBLING_PLUS, Axis.NEXT_SIBLING_STAR}
            )
            is Order.BFLR
        )
        assert order_for({Axis.CHILD, Axis.CHILD_PLUS}) is None
        assert order_for({Axis.CHILD_STAR, Axis.FOLLOWING}) is None

    def test_classify_named_signatures(self):
        assert classify(TAU["tau1"]) is Complexity.PTIME
        assert classify(TAU["tau2"]) is Complexity.PTIME
        assert classify(TAU["tau3"]) is Complexity.PTIME
        for name in ("tau4", "tau5", "tau6", "tau7", "tau8", "tau9", "tau10",
                     "tau11", "tau12", "tau13", "tau14", "tau15", "tau16", "tau17", "ax"):
            assert classify(TAU[name]) is Complexity.NP_COMPLETE, name

    def test_single_axes_are_tractable(self):
        from repro.trees.axes import AX

        for axis in AX:
            assert is_tractable({axis}), axis

    def test_maximality_of_tractable_sets(self):
        assert verify_maximality()
        assert len(MAXIMAL_TRACTABLE_SETS) == 3

    def test_signature_object_accepted(self):
        assert is_tractable(Signature.of(Axis.CHILD_PLUS))
        assert not is_tractable(Signature.of(Axis.CHILD, Axis.FOLLOWING))


class TestTable1:
    def test_matches_published_table(self):
        for cell in table1():
            expected = PAPER_TABLE1[frozenset({cell.row, cell.column})]
            assert cell.complexity == expected, (cell.row, cell.column)

    def test_all_28_cells_present(self):
        cells = table1()
        assert len(cells) == 28  # upper triangle of a 7x7 matrix incl. diagonal
        assert all(cell.theorem != "-" for cell in cells)

    def test_diagonal_is_ptime(self):
        for cell in table1():
            if cell.row == cell.column:
                assert cell.complexity is Complexity.PTIME

    def test_render_contains_key_entries(self):
        text = render_table1()
        assert "NP-hard (5.1)" in text
        assert "in P (4.3)" in text
        assert text.count("\n") >= 7
